//! Lulea compressed trie — Degermark, Brodnik, Carlsson & Pink, "Small
//! Forwarding Tables for Fast Routing Lookups" (ref \[7\] of the paper).
//!
//! The genuine three-level structure with strides 16/8/8:
//!
//! * **Level 1** covers the top 16 address bits. The complete binary trie
//!   cut at depth 16 is encoded as a 2^16-bit *head* vector, compressed
//!   into 4096 16-bit **codewords** (10-bit maptable row + 6-bit offset),
//!   1024 **base indexes** (one per four codewords) and the 678-row
//!   **maptable** of 4-bit partial head counts. A head's pointer either
//!   resolves to a next hop or descends into a level-2 chunk.
//! * **Levels 2 and 3** cover 8 bits each, in 256-slot *chunks* of three
//!   densities: **sparse** (≤ 8 heads, a fixed 8-entry head array),
//!   **dense** (≤ 64 heads, codewords without base indexes) and **very
//!   dense** (codewords plus 4 base indexes, as in level 1).
//!
//! The head vector is the minimal complete-trie partition of each level's
//!   slot range into uniform aligned power-of-two intervals, so every
//!   16-bit chunk pattern is one of the 677 valid depth-4 cut patterns (or
//!   all-zero, when an interval spans whole chunks) — exactly the property
//!   that keeps the maptable at 678 rows.
//!
//! Lookup costs are counted per memory access (codeword, base, maptable,
//! pointer, chunk reads, next-hop table), which on backbone tables lands
//! near the 6–7 accesses/lookup the paper measures in §5.1.

use crate::{prefetch_slice, CountedLookup, DeltaStats, LineSet, Lpm, BATCH_LANES};
use spal_rib::{NextHop, Prefix, RoutingTable};
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// Number of slots per chunk at levels 2 and 3.
const CHUNK_SLOTS: usize = 256;
/// Bits consumed by level 1.
const L1_BITS: u8 = 16;
/// Slots at level 1.
const L1_SLOTS: usize = 1 << 16;

/// Modeled bytes of one interleaved codeword group: a 2 B base index
/// followed by the four 2 B codewords it serves, packed so a codeword
/// and the base it needs land in the same cache line.
const GROUP_BYTES: usize = 10;
/// Modeled bytes of a dense chunk's packed codeword (no bases).
const CW_BYTES: usize = 2;
/// Modeled maptable row: 16 4-bit entries = 8 bytes.
const MT_ROW_BYTES: usize = 8;

// Line-accounting regions (see [`LineSet`]): distinct arrays carry
// distinct region ids so their modeled offsets never alias. Each level
// 2/3 chunk is tagged with its id — every chunk is its own little block
// of SRAM whose internal layout starts at offset 0.
const REGION_L1: u32 = 0;
const REGION_L1PTR: u32 = 1;
const REGION_MT: u32 = 2;
const REGION_NH: u32 = 3;
const REGION_L2_TAG: u32 = 0x4000_0000;
const REGION_L3_TAG: u32 = 0x8000_0000;

/// Modeled intra-chunk byte offset of the pointer array: sparse chunks
/// put it after the 8 head bytes, dense after 16 packed codewords,
/// very dense after 4 interleaved groups.
const SPARSE_PTR_BASE: usize = 8;
const DENSE_PTR_BASE: usize = 32;
const VDENSE_PTR_BASE: usize = 40;

/// A value stored behind a head pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Val {
    /// No route covers this interval.
    Miss,
    /// Resolved: index into the next-hop table.
    Nh(u16),
    /// Descend: index of a chunk at the next level.
    Sub(u32),
}

/// The shared maptable: one row per valid 16-bit cut pattern (plus the
/// all-zero row), each row giving, for every position `p` in `0..16`, the
/// number of heads at positions `0..=p`.
struct MapTable {
    rows: Vec<[u8; 16]>,
    /// pattern → row index, used only during construction.
    index: HashMap<u16, u16>,
}

/// Number of valid 16-bit complete-trie cut patterns, including all-zero.
pub const MAPTABLE_ROWS: usize = 678;

fn maptable() -> &'static MapTable {
    static TABLE: OnceLock<MapTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        // Valid patterns for a width-w aligned region: either one head at
        // position 0 (the region is a single interval) or the
        // concatenation of two valid width-w/2 patterns.
        fn gen(width: usize) -> Vec<u16> {
            if width == 1 {
                return vec![1];
            }
            let half = gen(width / 2);
            let mut out = vec![1 << (width - 1)]; // head at position 0 only
            for &l in &half {
                for &r in &half {
                    out.push(l << (width / 2) | r);
                }
            }
            out
        }
        let mut patterns = gen(16);
        patterns.push(0); // interval spanning the whole chunk from outside
        patterns.sort_unstable();
        patterns.dedup();
        assert_eq!(patterns.len(), MAPTABLE_ROWS);
        let mut rows = Vec::with_capacity(patterns.len());
        let mut index = HashMap::with_capacity(patterns.len());
        for (i, &pat) in patterns.iter().enumerate() {
            let mut row = [0u8; 16];
            for (p, slot) in row.iter_mut().enumerate() {
                // heads at positions 0..=p; position p maps to bit 15-p.
                *slot = (pat >> (15 - p)).count_ones() as u8;
            }
            rows.push(row);
            index.insert(pat, i as u16);
        }
        MapTable { rows, index }
    })
}

/// A 16-bit codeword: maptable row index (`ten`) and head offset within
/// the surrounding group (`six`). Stored unpacked; modelled as 2 bytes.
#[derive(Debug, Clone, Copy)]
struct Codeword {
    ten: u16,
    six: u16,
}

/// One interleaved group of the coded vector: a base index followed by
/// the four codewords it serves. Resolving any slot reads its codeword
/// *and* its base from this one (modeled 10-byte) record, so the two
/// accesses usually mark a single cache line — the split parallel
/// codeword/base arrays this replaces cost two lines per level.
#[derive(Debug, Clone, Copy)]
struct Group {
    base: u32,
    cws: [Codeword; 4],
}

/// A codeword-compressed bit vector covering `slots` positions, stored
/// as interleaved base+codeword groups. When `with_bases` (level 1 and
/// very dense chunks) each group's base is real; otherwise (dense
/// chunks) bases are implicitly zero and the modeled layout is the
/// packed 2-byte codewords alone.
#[derive(Debug, Clone)]
struct CodedVector {
    groups: Vec<Group>,
    with_bases: bool,
}

impl CodedVector {
    /// Compress `heads` (one bool per slot). `heads.len()` must be a
    /// multiple of 64 (four 16-slot codewords per group).
    fn build(heads: &[bool], with_bases: bool) -> Self {
        assert_eq!(heads.len() % 64, 0);
        let mt = maptable();
        let n_chunks = heads.len() / 16;
        let mut groups: Vec<Group> = Vec::with_capacity(n_chunks / 4);
        let mut total: u32 = 0; // heads before current chunk
        for j in 0..n_chunks {
            if j % 4 == 0 {
                groups.push(Group {
                    base: if with_bases { total } else { 0 },
                    cws: [Codeword { ten: 0, six: 0 }; 4],
                });
            }
            let six = if with_bases {
                total - groups[j / 4].base
            } else {
                total
            };
            let mut pat: u16 = 0;
            for p in 0..16 {
                if heads[j * 16 + p] {
                    pat |= 1 << (15 - p);
                }
            }
            let ten = *mt
                .index
                .get(&pat)
                .unwrap_or_else(|| panic!("invalid cut pattern {pat:#018b}"));
            groups[j / 4].cws[j % 4] = Codeword {
                ten,
                six: six as u16,
            };
            total += pat.count_ones();
        }
        CodedVector { groups, with_bases }
    }

    /// Codeword `j` (each codeword covers 16 slots).
    #[inline]
    fn cw(&self, j: usize) -> Codeword {
        self.groups[j / 4].cws[j % 4]
    }

    /// Base index governing codeword `j`.
    #[inline]
    fn base(&self, j: usize) -> u32 {
        self.groups[j / 4].base
    }

    /// Number of codewords.
    fn n_codewords(&self) -> usize {
        self.groups.len() * 4
    }

    /// Index of the head governing slot `pos`, and the number of memory
    /// accesses performed (codeword, base when present, maptable), with
    /// the maptable passed in so batch callers resolve the `OnceLock`
    /// once per group instead of once per lane.
    #[inline]
    fn head_index_mt(&self, mt: &MapTable, pos: usize) -> (usize, u32) {
        let chunk = pos / 16;
        let within = pos % 16;
        let cw = self.cw(chunk);
        let mut accesses = 1; // codeword read
        let base = if self.with_bases {
            accesses += 1; // base index read
            self.base(chunk)
        } else {
            0
        };
        let count = mt.rows[cw.ten as usize][within] as u32;
        accesses += 1; // maptable read
        let idx = base + cw.six as u32 + count - 1;
        (idx as usize, accesses)
    }

    /// [`CodedVector::head_index_mt`] with cache-line accounting: the
    /// codeword and its base live in one interleaved group record, so
    /// the two reads usually mark a single line; the maptable row is a
    /// second region.
    #[inline]
    fn head_index_lines(
        &self,
        mt: &MapTable,
        pos: usize,
        region: u32,
        lines: &mut LineSet,
    ) -> (usize, u32) {
        let chunk = pos / 16;
        if self.with_bases {
            lines.touch(region, (chunk / 4) * GROUP_BYTES, GROUP_BYTES);
        } else {
            lines.touch(region, chunk * CW_BYTES, CW_BYTES);
        }
        let cw = self.cw(chunk);
        lines.touch(
            REGION_MT,
            cw.ten as usize * MT_ROW_BYTES + (pos % 16) / 2,
            1,
        );
        self.head_index_mt(mt, pos)
    }

    /// [`CodedVector::head_index_mt`] without the access bookkeeping,
    /// for the uncounted [`Lpm::lookup`] fast path.
    #[inline]
    fn head_index_plain(&self, pos: usize) -> usize {
        let chunk = pos / 16;
        let cw = self.cw(chunk);
        let base = if self.with_bases { self.base(chunk) } else { 0 };
        let count = maptable().rows[cw.ten as usize][pos % 16] as u32;
        (base + cw.six as u32 + count - 1) as usize
    }

    /// Modelled bytes: 2 per codeword, 2 per base index — interleaving
    /// changes the layout, not the size.
    fn model_bytes(&self) -> usize {
        self.groups.len()
            * if self.with_bases {
                GROUP_BYTES
            } else {
                4 * CW_BYTES
            }
    }
}

/// A level-2 or level-3 chunk in one of the three densities of [7].
#[derive(Debug, Clone)]
enum Chunk {
    /// ≤ 8 heads: fixed arrays of 8 head positions and 8 pointers.
    Sparse { heads: Vec<u8>, ptrs: Vec<Val> },
    /// ≤ 64 heads: 16 codewords whose `six` counts from the chunk start.
    Dense { vec: CodedVector, ptrs: Vec<Val> },
    /// > 64 heads: codewords plus 4 base indexes, as at level 1.
    VeryDense { vec: CodedVector, ptrs: Vec<Val> },
}

impl Chunk {
    fn build(slots: &[Val]) -> Self {
        assert_eq!(slots.len(), CHUNK_SLOTS);
        let heads = head_vector(slots);
        let n_heads = heads.iter().filter(|&&h| h).count();
        let ptrs: Vec<Val> = heads
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h)
            .map(|(p, _)| slots[p])
            .collect();
        if n_heads <= 8 {
            let head_pos: Vec<u8> = heads
                .iter()
                .enumerate()
                .filter(|&(_, &h)| h)
                .map(|(p, _)| p as u8)
                .collect();
            Chunk::Sparse {
                heads: head_pos,
                ptrs,
            }
        } else if n_heads <= 64 {
            Chunk::Dense {
                vec: CodedVector::build(&heads, false),
                ptrs,
            }
        } else {
            Chunk::VeryDense {
                vec: CodedVector::build(&heads, true),
                ptrs,
            }
        }
    }

    /// Resolve the 8 address bits `pos` within this chunk: the governing
    /// pointer and the access count, with cache-line accounting under
    /// the chunk's modeled layout (`region` tags this chunk's block).
    fn resolve_lines(
        &self,
        mt: &MapTable,
        pos: usize,
        region: u32,
        lines: &mut LineSet,
    ) -> (Val, u32) {
        let (ptrs, idx, accesses, ptr_base) = self.locate_lines(mt, pos, region, lines);
        lines.touch(region, ptr_base + idx * 2, 2);
        (ptrs[idx], accesses + 1) // + pointer read
    }

    /// First half of [`Chunk::resolve`]: find the governing pointer's
    /// index without reading it, so the batched walk can prefetch the
    /// pointer and defer the read to a later lane pass. The access
    /// count covers everything *except* that deferred pointer read.
    #[inline]
    fn locate(&self, mt: &MapTable, pos: usize) -> (&[Val], usize, u32) {
        match self {
            Chunk::Sparse { heads, ptrs } => {
                // One access reads the (24-byte) head block, one reads the
                // selected pointer. The governing head is the last one at
                // or before `pos`; a branchless rank beats a binary search
                // here, whose ~3 data-dependent branches mispredict freely
                // on random addresses. Slot 0 is always a head, so the
                // rank is ≥ 1 (`saturating_sub` only guards corruption).
                let mut rank = 0usize;
                for &h in heads {
                    rank += (h as usize <= pos) as usize;
                }
                (ptrs, rank.saturating_sub(1), 1)
            }
            Chunk::Dense { vec, ptrs } | Chunk::VeryDense { vec, ptrs } => {
                let (idx, accesses) = vec.head_index_mt(mt, pos);
                (ptrs, idx, accesses)
            }
        }
    }

    /// [`Chunk::locate`] with cache-line accounting. Also returns the
    /// modeled byte offset of the pointer array within this chunk's
    /// block, so the caller can mark the deferred pointer read's line
    /// when it performs that read.
    #[inline]
    fn locate_lines(
        &self,
        mt: &MapTable,
        pos: usize,
        region: u32,
        lines: &mut LineSet,
    ) -> (&[Val], usize, u32, usize) {
        match self {
            Chunk::Sparse { heads, ptrs } => {
                lines.touch(region, 0, SPARSE_PTR_BASE); // the 8 head bytes
                let mut rank = 0usize;
                for &h in heads {
                    rank += (h as usize <= pos) as usize;
                }
                (ptrs, rank.saturating_sub(1), 1, SPARSE_PTR_BASE)
            }
            Chunk::Dense { vec, ptrs } => {
                let (idx, accesses) = vec.head_index_lines(mt, pos, region, lines);
                (ptrs, idx, accesses, DENSE_PTR_BASE)
            }
            Chunk::VeryDense { vec, ptrs } => {
                let (idx, accesses) = vec.head_index_lines(mt, pos, region, lines);
                (ptrs, idx, accesses, VDENSE_PTR_BASE)
            }
        }
    }

    /// Prefetch the chunk-internal arrays a lookup of `pos` will read.
    /// Reads only the chunk header (which the caller has already
    /// prefetched a stage earlier), so issuing this one lane pass before
    /// [`Chunk::locate`] overlaps the header → inner-array dependent
    /// miss across all lanes of a batch group.
    #[inline]
    fn prefetch_inner(&self, pos: usize) {
        match self {
            Chunk::Sparse { heads, ptrs } => {
                prefetch_slice(heads, 0);
                prefetch_slice(ptrs, 0);
            }
            Chunk::Dense { vec, .. } | Chunk::VeryDense { vec, .. } => {
                // One group record holds the codeword and its base.
                prefetch_slice(&vec.groups, pos / 64);
            }
        }
    }

    /// [`Chunk::resolve`] without the access bookkeeping.
    #[inline]
    fn resolve_plain(&self, pos: usize) -> Val {
        let (ptrs, idx, _) = self.locate(maptable(), pos);
        ptrs[idx]
    }

    /// Modelled bytes (§4): sparse chunks are fixed 8×1 B heads + 8×2 B
    /// pointers; coded chunks are their codeword arrays plus 2 B per
    /// pointer.
    fn model_bytes(&self) -> usize {
        match self {
            Chunk::Sparse { .. } => 8 + 8 * 2,
            Chunk::Dense { vec, ptrs } | Chunk::VeryDense { vec, ptrs } => {
                vec.model_bytes() + ptrs.len() * 2
            }
        }
    }

    fn head_count(&self) -> usize {
        match self {
            Chunk::Sparse { ptrs, .. } => ptrs.len(),
            Chunk::Dense { ptrs, .. } | Chunk::VeryDense { ptrs, .. } => ptrs.len(),
        }
    }
}

/// Compute the head vector of a slot array: the minimal partition of the
/// (power-of-two sized) range into aligned power-of-two intervals of
/// uniform value. `true` marks the first slot of each interval.
fn head_vector(slots: &[Val]) -> Vec<bool> {
    let n = slots.len();
    assert!(n.is_power_of_two());
    let levels = n.trailing_zeros() as usize;
    // pure[k][i]: region i of size 2^k is uniform.
    let mut pure: Vec<Vec<bool>> = Vec::with_capacity(levels + 1);
    pure.push(vec![true; n]);
    for k in 1..=levels {
        let size = 1usize << k;
        let half = size / 2;
        let prev = &pure[k - 1];
        let mut cur = Vec::with_capacity(n >> k);
        for i in 0..(n >> k) {
            let uniform =
                prev[2 * i] && prev[2 * i + 1] && slots[i * size] == slots[i * size + half];
            cur.push(uniform);
        }
        pure.push(cur);
    }
    let mut heads = vec![false; n];
    // Descend from the top, emitting a head at the start of each maximal
    // uniform region.
    let mut stack = vec![(levels, 0usize)];
    while let Some((k, i)) = stack.pop() {
        if pure[k][i] || k == 0 {
            heads[i << k] = true;
        } else {
            stack.push((k - 1, 2 * i));
            stack.push((k - 1, 2 * i + 1));
        }
    }
    heads
}

/// The Lulea forwarding table.
///
/// ```
/// use spal_lpm::{lulea::LuleaTrie, Lpm};
/// use spal_rib::synth;
///
/// let table = synth::small(9);
/// let trie = LuleaTrie::build(&table);
/// let addr = table.entries()[10].prefix.first_addr();
/// assert_eq!(trie.lookup(addr), table.longest_match(addr).map(|e| e.next_hop));
/// // Far smaller than one byte per covered address, and every lookup
/// // costs a handful of memory accesses.
/// assert!(trie.lookup_counted(addr).mem_accesses <= 12);
/// ```
#[derive(Debug)]
pub struct LuleaTrie {
    l1: CodedVector,
    l1_ptrs: Vec<Val>,
    l2: Vec<Chunk>,
    l3: Vec<Chunk>,
    next_hops: Vec<NextHop>,
    routes: usize,
    /// Control-plane update state — not part of the lookup SRAM image
    /// (excluded from [`Lpm::storage_bytes`]), retained so
    /// [`Lpm::apply_delta`] can re-encode only the regions a route
    /// change touches.
    upd: UpdateState,
}

/// Uncompressed shadow of the level-1 cut plus the intern map and chunk
/// free lists — everything an in-place patch needs that the compressed
/// image throws away.
#[derive(Debug)]
struct UpdateState {
    /// The 2^16 level-1 slot values (post chunk substitution).
    slots: Vec<Val>,
    /// The level-1 head vector the codewords currently encode.
    heads: Vec<bool>,
    /// Next-hop interning map (`next_hops` index by value).
    nh_index: HashMap<NextHop, u16>,
    /// Level-2 chunk ids freed by withdrawals, reused before growing.
    free_l2: Vec<u32>,
    /// Level-3 chunk ids freed by withdrawals, reused before growing.
    free_l3: Vec<u32>,
}

/// Intern a next hop, returning its `Val::Nh` index.
fn intern_val(
    next_hops: &mut Vec<NextHop>,
    nh_index: &mut HashMap<NextHop, u16>,
    nh: NextHop,
) -> Val {
    let idx = *nh_index.entry(nh).or_insert_with(|| {
        let i = next_hops.len() as u16;
        next_hops.push(nh);
        i
    });
    Val::Nh(idx)
}

/// Store `chunk` in `l3`, reusing a freed slot when one exists.
fn alloc_l3(l3: &mut Vec<Chunk>, free_l3: &mut Vec<u32>, chunk: Chunk) -> u32 {
    match free_l3.pop() {
        Some(id) => {
            l3[id as usize] = chunk;
            id
        }
        None => {
            let id = l3.len() as u32;
            l3.push(chunk);
            id
        }
    }
}

/// A freed chunk's replacement: one head covering the whole range,
/// resolving to a miss. Never looked up (nothing references a freed id);
/// exists so freed slots don't pin their old arrays.
fn placeholder_chunk() -> Chunk {
    Chunk::Sparse {
        heads: vec![0],
        ptrs: vec![Val::Miss],
    }
}

/// The level-3 chunk ids a level-2 chunk points at.
fn chunk_sub_ids(chunk: &Chunk) -> Vec<u32> {
    let ptrs = match chunk {
        Chunk::Sparse { ptrs, .. } => ptrs,
        Chunk::Dense { ptrs, .. } | Chunk::VeryDense { ptrs, .. } => ptrs,
    };
    ptrs.iter()
        .filter_map(|v| match v {
            Val::Sub(id) => Some(*id),
            _ => None,
        })
        .collect()
}

/// Whether every slot in the region holds the same value.
fn region_uniform(slots: &[Val]) -> bool {
    slots.iter().all(|v| *v == slots[0])
}

impl LuleaTrie {
    /// Build the three-level structure from a routing table.
    pub fn build(table: &RoutingTable) -> Self {
        let mut next_hops: Vec<NextHop> = Vec::new();
        let mut nh_index: HashMap<NextHop, u16> = HashMap::new();
        let mut intern = |nh: NextHop| -> Val { intern_val(&mut next_hops, &mut nh_index, nh) };

        // Level-1 slot values from routes of length <= 16, shortest first
        // (so longer routes overwrite inside their ranges).
        let mut slots: Vec<Val> = vec![Val::Miss; L1_SLOTS];
        let mut shallow: Vec<_> = table
            .entries()
            .iter()
            .filter(|e| e.prefix.len() <= L1_BITS)
            .collect();
        shallow.sort_by_key(|e| e.prefix.len());
        for e in shallow {
            let start = (e.prefix.bits() >> 16) as usize;
            let count = 1usize << (L1_BITS - e.prefix.len());
            let v = intern(e.next_hop);
            slots[start..start + count].fill(v);
        }

        // Group deep routes (len > 16) by their 16-bit base.
        let mut deep: HashMap<usize, Vec<(u32, u8, NextHop)>> = HashMap::new();
        for e in table.entries().iter().filter(|e| e.prefix.len() > L1_BITS) {
            let base = (e.prefix.bits() >> 16) as usize;
            deep.entry(base)
                .or_default()
                .push((e.prefix.bits(), e.prefix.len(), e.next_hop));
        }

        let mut l2: Vec<Chunk> = Vec::new();
        let mut l3: Vec<Chunk> = Vec::new();
        let mut bases: Vec<_> = deep.into_iter().collect();
        bases.sort_by_key(|&(b, _)| b);
        for (base, routes) in bases {
            let default = slots[base];
            let chunk = build_chunk(&routes, 16, default, &mut l3, &mut Vec::new(), &mut intern);
            let id = l2.len() as u32;
            l2.push(chunk);
            slots[base] = Val::Sub(id);
        }

        let heads = head_vector(&slots);
        let l1_ptrs: Vec<Val> = heads
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h)
            .map(|(p, _)| slots[p])
            .collect();
        let l1 = CodedVector::build(&heads, true);

        LuleaTrie {
            l1,
            l1_ptrs,
            l2,
            l3,
            next_hops,
            routes: table.len(),
            upd: UpdateState {
                slots,
                heads,
                nh_index,
                free_l2: Vec::new(),
                free_l3: Vec::new(),
            },
        }
    }

    /// Number of routes the table was built from.
    pub fn route_count(&self) -> usize {
        self.routes
    }

    /// Heads at level 1 (size of the level-1 pointer array).
    pub fn l1_head_count(&self) -> usize {
        self.l1_ptrs.len()
    }

    /// Number of level-2 / level-3 chunks.
    pub fn chunk_counts(&self) -> (usize, usize) {
        (self.l2.len(), self.l3.len())
    }

    /// Total heads (pointer-array entries) across all levels — the main
    /// size driver of the structure.
    pub fn total_heads(&self) -> usize {
        self.l1_ptrs.len()
            + self
                .l2
                .iter()
                .chain(self.l3.iter())
                .map(Chunk::head_count)
                .sum::<usize>()
    }

    /// Free a level-2 chunk and its level-3 descendants, leaving their
    /// ids on the free lists for reuse.
    fn free_l2_chunk(&mut self, id: u32) {
        for sub in chunk_sub_ids(&self.l2[id as usize]) {
            self.l3[sub as usize] = placeholder_chunk();
            self.upd.free_l3.push(sub);
        }
        self.l2[id as usize] = placeholder_chunk();
        self.upd.free_l2.push(id);
    }

    /// Modelled bytes of a level-2 chunk tree (the chunk plus its
    /// level-3 children) — the work a chunk rebuild touches.
    fn tree_bytes(&self, chunk: &Chunk) -> usize {
        chunk.model_bytes()
            + chunk_sub_ids(chunk)
                .iter()
                .map(|&id| self.l3[id as usize].model_bytes())
                .sum::<usize>()
    }

    /// Re-encode the level-1 structure after the (aligned, power-of-two
    /// sized) slot range `[lo, lo+size)` takes the values `new_vals`.
    ///
    /// The rewritten region grows past the range only as far as head
    /// positions can actually change: while the parent buddy region was
    /// uniform *before* the write (its single interval is about to
    /// split, surfacing heads in the sibling) or is uniform *after* it
    /// (the sibling's intervals merge away). Every strict ancestor of
    /// the final region is then non-uniform under both the old and new
    /// slot values, so the decomposition reaches the region both times
    /// and heads outside it cannot move. Within the region: recompute
    /// the head vector, splice the pointer array, re-encode the touched
    /// 16-slot codeword groups, and shift the downstream bases (plus the
    /// same-group codeword offsets) by the head-count delta. Returns
    /// modelled bytes touched.
    fn patch_l1_range(&mut self, lo: usize, size: usize, new_vals: &[Val]) -> usize {
        debug_assert!(size.is_power_of_two() && lo.is_multiple_of(size));
        debug_assert_eq!(new_vals.len(), size);
        let (mut lo, mut size) = (lo, size);
        let orig_lo = lo;
        // Grow while the parent's single old interval is about to split.
        while size < L1_SLOTS {
            let plo = lo & !(2 * size - 1);
            if region_uniform(&self.upd.slots[plo..plo + 2 * size]) {
                lo = plo;
                size *= 2;
            } else {
                break;
            }
        }
        self.upd.slots[orig_lo..orig_lo + new_vals.len()].copy_from_slice(new_vals);
        // Grow while the new values merge the parent into one interval.
        while size < L1_SLOTS {
            let plo = lo & !(2 * size - 1);
            if region_uniform(&self.upd.slots[plo..plo + 2 * size]) {
                lo = plo;
                size *= 2;
            } else {
                break;
            }
        }

        // The region's start always carries a head in the old encoding
        // (the old decomposition visits the region: every strict
        // ancestor is non-uniform), so its pointer index locates the
        // splice point.
        debug_assert!(self.upd.heads[lo]);
        let first_idx = self.l1.head_index_plain(lo);
        let new_heads = head_vector(&self.upd.slots[lo..lo + size]);
        let h_old = self.upd.heads[lo..lo + size].iter().filter(|&&h| h).count();
        let h_new = new_heads.iter().filter(|&&h| h).count();
        let new_ptrs: Vec<Val> = new_heads
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h)
            .map(|(q, _)| self.upd.slots[lo + q])
            .collect();
        self.l1_ptrs.splice(first_idx..first_idx + h_old, new_ptrs);
        self.upd.heads[lo..lo + size].copy_from_slice(&new_heads);

        // Re-encode the touched codeword groups; `cum` starts from the
        // old arithmetic, valid because everything before the region is
        // untouched.
        let mt = maptable();
        let g0 = lo / 16;
        let g1 = (lo + size - 1) / 16;
        let mut cum: u32 = self.l1.base(g0) + self.l1.cw(g0).six as u32;
        for g in g0..=g1 {
            if g % 4 == 0 {
                self.l1.groups[g / 4].base = cum;
            }
            let six = cum - self.l1.groups[g / 4].base;
            let mut pat: u16 = 0;
            for p in 0..16 {
                if self.upd.heads[g * 16 + p] {
                    pat |= 1 << (15 - p);
                }
            }
            let ten = *mt
                .index
                .get(&pat)
                .unwrap_or_else(|| panic!("invalid cut pattern {pat:#018b}"));
            self.l1.groups[g / 4].cws[g % 4] = Codeword {
                ten,
                six: six as u16,
            };
            cum += pat.count_ones();
        }
        let delta = h_new as i64 - h_old as i64;
        let mut bases_shifted = 0usize;
        if delta != 0 {
            let mut g = g1 + 1;
            while g < self.l1.n_codewords() && g % 4 != 0 {
                let cw = &mut self.l1.groups[g / 4].cws[g % 4];
                cw.six = (cw.six as i64 + delta) as u16;
                g += 1;
            }
            for k in (g1 / 4 + 1)..self.l1.groups.len() {
                self.l1.groups[k].base = (self.l1.groups[k].base as i64 + delta) as u32;
            }
            bases_shifted = self.l1.groups.len().saturating_sub(g1 / 4 + 1);
        }
        // Modelled bytes: codewords and bases at 2 B each, spliced-in
        // pointers at 2 B each. (The pointer-array tail compaction a
        // splice implies is a bulk memmove the byte model omits, as in
        // a segmented hardware pointer array.)
        (g1 - g0 + 1) * 2 + bases_shifted * 2 + h_new * 2
    }

    /// Patch for a changed prefix of length ≤ 16: repaint the covered
    /// level-1 slot range from the post-update RIB (rebuilding the chunk
    /// trees under bases that keep deep routes, freeing those that lost
    /// them), then re-encode the affected level-1 region.
    fn patch_shallow(&mut self, p: Prefix, rib: &RoutingTable) -> usize {
        let start = (p.bits() >> 16) as usize;
        let count = 1usize << (L1_BITS - p.len());
        let mut bytes = 0usize;

        // New ≤16-bit values for the range: the value inherited from at
        // or above `p`, then longer contained routes shortest-first —
        // the build's fill order restricted to the range.
        let base_val = match rib.best_cover(p.first_addr(), p.len()) {
            Some(e) => intern_val(&mut self.next_hops, &mut self.upd.nh_index, e.next_hop),
            None => Val::Miss,
        };
        let mut vals = vec![base_val; count];
        let mut contained: Vec<_> = rib
            .range(p.first_addr(), p.last_addr())
            .iter()
            .filter(|e| e.prefix.len() > p.len() && e.prefix.len() <= L1_BITS)
            .collect();
        contained.sort_by_key(|e| e.prefix.len());
        for e in contained {
            let v = intern_val(&mut self.next_hops, &mut self.upd.nh_index, e.next_hop);
            let s = ((e.prefix.bits() >> 16) as usize) - start;
            let c = 1usize << (L1_BITS - e.prefix.len());
            vals[s..s + c].fill(v);
        }

        // Deep routes in the range, grouped by 16-bit base.
        let mut deep: BTreeMap<usize, Vec<(u32, u8, NextHop)>> = BTreeMap::new();
        for e in rib
            .range(p.first_addr(), p.last_addr())
            .iter()
            .filter(|e| e.prefix.len() > L1_BITS)
        {
            let base = (e.prefix.bits() >> 16) as usize;
            deep.entry(base)
                .or_default()
                .push((e.prefix.bits(), e.prefix.len(), e.next_hop));
        }

        // Bases that had a chunk but lost their last deep route (both
        // withdrawn in this batch): free the chunk; the painted value
        // already stands in `vals`.
        let freed: Vec<u32> = (0..count)
            .filter_map(|i| match self.upd.slots[start + i] {
                Val::Sub(id) if !deep.contains_key(&(start + i)) => Some(id),
                _ => None,
            })
            .collect();
        for id in freed {
            self.free_l2_chunk(id);
        }

        // Rebuild the chunk tree under every base that keeps deep
        // routes, seeding it with the (possibly changed) painted value.
        for (&base, routes) in &deep {
            let default = vals[base - start];
            let id = self.rebuild_base_chunk(base, routes, default);
            vals[base - start] = Val::Sub(id);
            bytes += self.tree_bytes(&self.l2[id as usize]);
        }

        bytes + self.patch_l1_range(start, count, &vals)
    }

    /// Rebuild (or allocate) the level-2 chunk tree for `base`, reusing
    /// the existing id when the base already had one. Returns the id.
    fn rebuild_base_chunk(
        &mut self,
        base: usize,
        routes: &[(u32, u8, NextHop)],
        default: Val,
    ) -> u32 {
        // Free the old tree's level-3 children first so the rebuild can
        // recycle their slots.
        let old_id = match self.upd.slots[base] {
            Val::Sub(id) => {
                for sub in chunk_sub_ids(&self.l2[id as usize]) {
                    self.l3[sub as usize] = placeholder_chunk();
                    self.upd.free_l3.push(sub);
                }
                Some(id)
            }
            _ => None,
        };
        let LuleaTrie {
            ref mut l2,
            ref mut l3,
            ref mut next_hops,
            ref mut upd,
            ..
        } = *self;
        let UpdateState {
            ref mut nh_index,
            ref mut free_l2,
            ref mut free_l3,
            ..
        } = *upd;
        let mut intern = |nh: NextHop| intern_val(next_hops, nh_index, nh);
        let chunk = build_chunk(routes, 16, default, l3, free_l3, &mut intern);
        match old_id {
            Some(id) => {
                l2[id as usize] = chunk;
                id
            }
            None => match free_l2.pop() {
                Some(id) => {
                    l2[id as usize] = chunk;
                    id
                }
                None => {
                    let id = l2.len() as u32;
                    l2.push(chunk);
                    id
                }
            },
        }
    }

    /// Patch for a changed prefix of length > 16: rebuild the one chunk
    /// tree under its 16-bit base (allocating or freeing it as deep
    /// routes appear and disappear), touching level 1 only if the slot's
    /// value changes.
    fn patch_deep(&mut self, p: Prefix, rib: &RoutingTable) -> usize {
        let base = (p.bits() >> 16) as usize;
        let base_addr = (base as u32) << 16;
        let routes: Vec<(u32, u8, NextHop)> = rib
            .range(base_addr, base_addr | 0xFFFF)
            .iter()
            .filter(|e| e.prefix.len() > L1_BITS)
            .map(|e| (e.prefix.bits(), e.prefix.len(), e.next_hop))
            .collect();
        let default = match rib.best_cover(base_addr, L1_BITS) {
            Some(e) => intern_val(&mut self.next_hops, &mut self.upd.nh_index, e.next_hop),
            None => Val::Miss,
        };
        let old = self.upd.slots[base];
        if routes.is_empty() {
            if let Val::Sub(id) = old {
                self.free_l2_chunk(id);
            }
            if old != default {
                self.patch_l1_range(base, 1, &[default])
            } else {
                0
            }
        } else {
            let had_chunk = matches!(old, Val::Sub(_));
            let id = self.rebuild_base_chunk(base, &routes, default);
            let bytes = self.tree_bytes(&self.l2[id as usize]);
            if had_chunk {
                // Same id, same slot value: level 1 is untouched.
                bytes
            } else {
                bytes + self.patch_l1_range(base, 1, &[Val::Sub(id)])
            }
        }
    }
}

/// Build a level-2 chunk (covering address bits `start..start+8`) for the
/// deep routes under one base, descending into level 3 as needed.
///
/// `routes` are `(bits, len, nh)` with `len > start`; `default` is the
/// value the parent level resolved for this range (the fallback for slots
/// no deeper route covers).
fn build_chunk(
    routes: &[(u32, u8, NextHop)],
    start: u8,
    default: Val,
    l3: &mut Vec<Chunk>,
    free_l3: &mut Vec<u32>,
    intern: &mut impl FnMut(NextHop) -> Val,
) -> Chunk {
    let mut slots = vec![default; CHUNK_SLOTS];
    let end = start + 8;
    // Shallow-first fill of routes that terminate within this stride.
    let mut shallow: Vec<_> = routes.iter().filter(|r| r.1 <= end).collect();
    shallow.sort_by_key(|r| r.1);
    for &&(bits, len, nh) in &shallow {
        // `bits` is canonical, so the low (end - len) slot bits are zero
        // and `first` is already the slot-range base.
        let first = ((bits >> (32 - end as u32)) & 0xFF) as usize;
        let count = 1usize << (end - len);
        let v = intern(nh);
        slots[first..first + count].fill(v);
    }
    // Deeper routes spill into level 3 (only possible when start == 16).
    let mut deeper: HashMap<usize, Vec<(u32, u8, NextHop)>> = HashMap::new();
    for &(bits, len, nh) in routes.iter().filter(|r| r.1 > end) {
        assert!(end < 32, "routes longer than 32 bits are impossible");
        let slot = ((bits >> (32 - end as u32)) & 0xFF) as usize;
        deeper.entry(slot).or_default().push((bits, len, nh));
    }
    let mut deeper: Vec<_> = deeper.into_iter().collect();
    deeper.sort_by_key(|&(s, _)| s);
    for (slot, sub_routes) in deeper {
        let sub_default = slots[slot];
        let chunk = build_chunk(&sub_routes, end, sub_default, l3, free_l3, intern);
        let id = alloc_l3(l3, free_l3, chunk);
        slots[slot] = Val::Sub(id);
    }
    Chunk::build(&slots)
}

/// Lanes per interleaved batch group. Lulea's descent is three short
/// *uniform* stages (every lane reads codeword → base → maptable →
/// pointer at the same level), so unlike the pointer-chasing tries —
/// whose lane state must stay in registers across a variable-length
/// walk — it profits from groups wide enough to keep the memory
/// system's full complement of outstanding misses in flight per stage.
const WIDE_LANES: usize = 16;

impl LuleaTrie {
    /// One interleaved group of `N` lookups, staged level by level: all
    /// lanes read their level-1 codewords (prefetched up front), then
    /// all lanes descend into level 2, then level 3, with the next
    /// level's chunk headers prefetched between stages. Within a stage
    /// the lanes' reads are independent, so they overlap where the
    /// scalar walk would serialize one lookup's codeword → base →
    /// maptable → pointer chain after another's. Per-lane arithmetic is
    /// identical to [`LuleaTrie::lookup_counted`], so results and
    /// access counts match bit for bit.
    /// One level of the batched descent (`chunks` is `l2` or `l3`,
    /// `shift` selects the 8 address bits), software-pipelined over the
    /// lanes still pointing into this level in three passes: read each
    /// lane's chunk header (prefetched when the pointer into it was
    /// written) and prefetch the chunk-internal arrays; locate the
    /// governing pointers and prefetch them; read the pointers and
    /// immediately prefetch whatever they target next (a chunk header
    /// in `next`, or a next-hop entry). Each pass issues every active
    /// lane's miss before any lane needs its result, so the level costs
    /// one memory latency for the whole group instead of a serial chain
    /// per lane.
    /// Returns how many lanes still hold a [`Val::Sub`] afterwards, so
    /// the caller can skip the next level's passes when none descend.
    #[allow(clippy::too_many_arguments)] // the args are the pipeline's lane state
    fn descend_group<const N: usize>(
        &self,
        mt: &MapTable,
        chunks: &[Chunk],
        next: Option<&[Chunk]>,
        region_tag: u32,
        addrs: &[u32; N],
        val: &mut [Val; N],
        acc: &mut [u32; N],
        lines: &mut [LineSet; N],
        shift: u32,
    ) -> usize {
        let mut cur: [Option<(&Chunk, u32)>; N] = [None; N];
        for l in 0..N {
            if let Val::Sub(id) = val[l] {
                let chunk = &chunks[id as usize];
                chunk.prefetch_inner(((addrs[l] >> shift) & 0xFF) as usize);
                cur[l] = Some((chunk, region_tag | id));
            }
        }
        // (pointer array, index, pointer base offset, region tag)
        type Located<'a> = (&'a [Val], usize, usize, u32);
        let mut located: [Option<Located>; N] = [None; N];
        for l in 0..N {
            if let Some((chunk, region)) = cur[l] {
                let pos = ((addrs[l] >> shift) & 0xFF) as usize;
                let (ptrs, idx, a, ptr_base) = chunk.locate_lines(mt, pos, region, &mut lines[l]);
                prefetch_slice(ptrs, idx);
                located[l] = Some((ptrs, idx, ptr_base, region));
                acc[l] += a + 1; // + the pointer read performed below
            }
        }
        let mut descending = 0;
        for l in 0..N {
            if let Some((ptrs, idx, ptr_base, region)) = located[l] {
                lines[l].touch(region, ptr_base + idx * 2, 2);
                let v = ptrs[idx];
                val[l] = v;
                match v {
                    Val::Sub(id) => {
                        descending += 1;
                        if let Some(next) = next {
                            prefetch_slice(next, id as usize);
                        }
                    }
                    Val::Nh(i) => prefetch_slice(&self.next_hops, i as usize),
                    Val::Miss => {}
                }
            }
        }
        descending
    }

    fn lookup_group<const N: usize>(&self, addrs: [u32; N]) -> [CountedLookup; N] {
        for &a in &addrs {
            prefetch_slice(&self.l1.groups, (a >> 16) as usize / 64);
        }
        let mt = maptable();
        let mut val = [Val::Miss; N];
        let mut acc = [0u32; N];
        let mut lines: [LineSet; N] = std::array::from_fn(|_| LineSet::new());
        let mut descending = 0;
        for l in 0..N {
            let (head, a) =
                self.l1
                    .head_index_lines(mt, (addrs[l] >> 16) as usize, REGION_L1, &mut lines[l]);
            lines[l].touch(REGION_L1PTR, head * 2, 2);
            let v = self.l1_ptrs[head];
            val[l] = v;
            acc[l] = a + 1; // pointer read
            match v {
                Val::Sub(id) => {
                    descending += 1;
                    prefetch_slice(&self.l2, id as usize);
                }
                Val::Nh(i) => prefetch_slice(&self.next_hops, i as usize),
                Val::Miss => {}
            }
        }
        if descending > 0 {
            let deeper = self.descend_group(
                mt,
                &self.l2,
                Some(&self.l3),
                REGION_L2_TAG,
                &addrs,
                &mut val,
                &mut acc,
                &mut lines,
                8,
            );
            if deeper > 0 {
                self.descend_group(
                    mt,
                    &self.l3,
                    None,
                    REGION_L3_TAG,
                    &addrs,
                    &mut val,
                    &mut acc,
                    &mut lines,
                    0,
                );
            }
        }
        let mut out = [CountedLookup::MISS; N];
        for l in 0..N {
            out[l] = match val[l] {
                Val::Miss => CountedLookup {
                    next_hop: None,
                    mem_accesses: acc[l],
                    lines_touched: lines[l].count(),
                },
                Val::Nh(i) => {
                    lines[l].touch(REGION_NH, i as usize * 4, 4);
                    CountedLookup {
                        next_hop: Some(self.next_hops[i as usize]),
                        mem_accesses: acc[l] + 1, // next-hop table read
                        lines_touched: lines[l].count(),
                    }
                }
                Val::Sub(_) => unreachable!("level 3 never points deeper"),
            };
        }
        out
    }
}

impl Lpm for LuleaTrie {
    /// Uncounted fast path: the same three-level descent minus the
    /// per-level access bookkeeping the counted walk threads through
    /// every codeword/base/maptable read.
    fn lookup(&self, addr: u32) -> Option<NextHop> {
        let mut val = self.l1_ptrs[self.l1.head_index_plain((addr >> 16) as usize)];
        if let Val::Sub(id) = val {
            val = self.l2[id as usize].resolve_plain(((addr >> 8) & 0xFF) as usize);
        }
        if let Val::Sub(id) = val {
            val = self.l3[id as usize].resolve_plain((addr & 0xFF) as usize);
        }
        match val {
            Val::Miss => None,
            Val::Nh(i) => Some(self.next_hops[i as usize]),
            Val::Sub(_) => unreachable!("level 3 never points deeper"),
        }
    }

    fn lookup_batch(&self, addrs: &[u32], out: &mut [CountedLookup]) {
        assert_eq!(
            addrs.len(),
            out.len(),
            "lookup_batch: addrs and out must have equal lengths"
        );
        let mut i = 0;
        while i + WIDE_LANES <= addrs.len() {
            let group: [u32; WIDE_LANES] = addrs[i..i + WIDE_LANES].try_into().expect("exact");
            out[i..i + WIDE_LANES].copy_from_slice(&self.lookup_group(group));
            i += WIDE_LANES;
        }
        while i + BATCH_LANES <= addrs.len() {
            let group: [u32; BATCH_LANES] = addrs[i..i + BATCH_LANES].try_into().expect("exact");
            out[i..i + BATCH_LANES].copy_from_slice(&self.lookup_group(group));
            i += BATCH_LANES;
        }
        for k in i..addrs.len() {
            out[k] = self.lookup_counted(addrs[k]);
        }
    }

    fn lookup_counted(&self, addr: u32) -> CountedLookup {
        let mt = maptable();
        let mut lines = LineSet::new();
        let ix = (addr >> 16) as usize;
        let (head, mut accesses) = self.l1.head_index_lines(mt, ix, REGION_L1, &mut lines);
        lines.touch(REGION_L1PTR, head * 2, 2);
        let mut val = self.l1_ptrs[head];
        accesses += 1; // pointer read
        if let Val::Sub(id) = val {
            let pos = ((addr >> 8) & 0xFF) as usize;
            let (v, a) =
                self.l2[id as usize].resolve_lines(mt, pos, REGION_L2_TAG | id, &mut lines);
            val = v;
            accesses += a;
        }
        if let Val::Sub(id) = val {
            let pos = (addr & 0xFF) as usize;
            let (v, a) =
                self.l3[id as usize].resolve_lines(mt, pos, REGION_L3_TAG | id, &mut lines);
            val = v;
            accesses += a;
        }
        match val {
            Val::Miss => CountedLookup {
                next_hop: None,
                mem_accesses: accesses,
                lines_touched: lines.count(),
            },
            Val::Nh(i) => {
                lines.touch(REGION_NH, i as usize * 4, 4);
                CountedLookup {
                    next_hop: Some(self.next_hops[i as usize]),
                    mem_accesses: accesses + 1, // next-hop table read
                    lines_touched: lines.count(),
                }
            }
            Val::Sub(_) => unreachable!("level 3 never points deeper"),
        }
    }

    /// Chunk-granular patching: each changed prefix re-encodes only the
    /// level-1 region its range covers (§"patch_l1_range") and rebuilds
    /// only the chunk trees under bases whose deep routes changed, with
    /// freed chunk ids recycled through free lists. Fallback rule:
    /// prefixes shorter than /4 cover ≥ 4096 of the 65536 level-1 slots
    /// — at that span a patch approaches rebuild cost, so decline.
    fn apply_delta(&mut self, changed: &[Prefix], rib: &RoutingTable) -> Option<DeltaStats> {
        if changed.iter().any(|p| p.len() < 4) {
            return None;
        }
        let mut stats = DeltaStats::default();
        for &p in changed {
            let bytes = if p.len() <= L1_BITS {
                self.patch_shallow(p, rib)
            } else {
                self.patch_deep(p, rib)
            };
            stats.prefixes_applied += 1;
            stats.bytes_touched += bytes;
        }
        self.routes = rib.len();
        Some(stats)
    }

    fn storage_bytes(&self) -> usize {
        let maptable_bytes = MAPTABLE_ROWS * 16 / 2; // 4-bit entries
        let l1 = self.l1.model_bytes() + self.l1_ptrs.len() * 2;
        let chunks: usize = self
            .l2
            .iter()
            .chain(self.l3.iter())
            .map(Chunk::model_bytes)
            .sum();
        let nh_table = self.next_hops.len() * 4;
        maptable_bytes + l1 + chunks + nh_table
    }

    fn name(&self) -> &'static str {
        "Lulea"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::{synth, RouteEntry};

    fn table(prefixes: &[(&str, u16)]) -> RoutingTable {
        RoutingTable::from_entries(prefixes.iter().map(|&(s, nh)| RouteEntry {
            prefix: s.parse().unwrap(),
            next_hop: NextHop(nh),
        }))
    }

    fn assert_agrees(rt: &RoutingTable, addrs: impl Iterator<Item = u32>) {
        let trie = LuleaTrie::build(rt);
        for addr in addrs {
            assert_eq!(
                trie.lookup(addr),
                rt.longest_match(addr).map(|e| e.next_hop),
                "addr {addr:#010x}"
            );
        }
    }

    #[test]
    fn maptable_has_678_rows() {
        let mt = maptable();
        assert_eq!(mt.rows.len(), MAPTABLE_ROWS);
        // The all-zero row exists and counts nothing.
        let zero_row = mt.rows[*mt.index.get(&0).unwrap() as usize];
        assert_eq!(zero_row, [0u8; 16]);
        // The "single interval" row counts one head everywhere.
        let one = mt.rows[*mt.index.get(&0x8000).unwrap() as usize];
        assert_eq!(one, [1u8; 16]);
    }

    #[test]
    fn head_vector_minimal_partition() {
        // 8 slots: [A A A A B B C C] → heads at 0, 4, 6.
        let a = Val::Nh(0);
        let b = Val::Nh(1);
        let c = Val::Nh(2);
        let slots = vec![a, a, a, a, b, b, c, c];
        let heads = head_vector(&slots);
        assert_eq!(
            heads,
            vec![true, false, false, false, true, false, true, false]
        );
    }

    #[test]
    fn head_vector_alignment_constraint() {
        // [A B B B]: the run of Bs is NOT aligned, so it must split:
        // heads at 0, 1, 2 (positions 2-3 merge).
        let a = Val::Nh(0);
        let b = Val::Nh(1);
        let heads = head_vector(&[a, b, b, b]);
        assert_eq!(heads, vec![true, true, true, false]);
    }

    #[test]
    fn head_vector_uniform() {
        let heads = head_vector(&vec![Val::Miss; 64]);
        let mut expect = vec![false; 64];
        expect[0] = true;
        assert_eq!(heads, expect);
    }

    #[test]
    fn empty_table() {
        let rt = RoutingTable::new();
        let trie = LuleaTrie::build(&rt);
        assert_eq!(trie.lookup(0), None);
        assert_eq!(trie.lookup(u32::MAX), None);
        assert_eq!(trie.l1_head_count(), 1);
    }

    #[test]
    fn default_route_only() {
        let rt = table(&[("0.0.0.0/0", 5)]);
        let trie = LuleaTrie::build(&rt);
        assert_eq!(trie.lookup(0), Some(NextHop(5)));
        assert_eq!(trie.lookup(u32::MAX), Some(NextHop(5)));
    }

    #[test]
    fn shallow_routes_resolve_at_level_1() {
        let rt = table(&[("10.0.0.0/8", 1), ("10.128.0.0/9", 2)]);
        let trie = LuleaTrie::build(&rt);
        let c = trie.lookup_counted(0x0A00_0001);
        assert_eq!(c.next_hop, Some(NextHop(1)));
        // codeword + base + maptable + pointer + next-hop = 5 accesses.
        assert_eq!(c.mem_accesses, 5);
        assert_eq!(trie.lookup(0x0A80_0001), Some(NextHop(2)));
        assert_eq!(trie.chunk_counts(), (0, 0));
    }

    #[test]
    fn deep_routes_descend() {
        let rt = table(&[
            ("10.0.0.0/8", 1),
            ("10.1.2.0/24", 2),
            ("10.1.2.128/25", 3),
            ("10.1.2.3/32", 4),
        ]);
        let trie = LuleaTrie::build(&rt);
        assert_eq!(trie.lookup(0x0A01_0203), Some(NextHop(4))); // /32
        assert_eq!(trie.lookup(0x0A01_0204), Some(NextHop(2))); // /24
        assert_eq!(trie.lookup(0x0A01_0280), Some(NextHop(3))); // /25
        assert_eq!(trie.lookup(0x0A01_0300), Some(NextHop(1))); // /8 fallback
        assert_eq!(trie.lookup(0x0B00_0000), None);
        let (l2, l3) = trie.chunk_counts();
        assert_eq!(l2, 1);
        assert_eq!(l3, 1);
        // Deep lookup costs more accesses than a level-1 hit.
        assert!(trie.lookup_counted(0x0A01_0203).mem_accesses > 5);
    }

    #[test]
    fn intra_chunk_fallback_to_parent_value() {
        // An address inside the chunk but outside any deep route must
        // fall back to the level-1 result for that 16-bit base.
        let rt = table(&[("10.1.0.0/16", 7), ("10.1.200.0/24", 8)]);
        let trie = LuleaTrie::build(&rt);
        assert_eq!(trie.lookup(0x0A01_C801), Some(NextHop(8)));
        assert_eq!(trie.lookup(0x0A01_0101), Some(NextHop(7)));
    }

    #[test]
    fn miss_within_chunk() {
        // Deep routes without any shallow cover: non-covered slots miss.
        let rt = table(&[("10.1.2.0/24", 1)]);
        let trie = LuleaTrie::build(&rt);
        assert_eq!(trie.lookup(0x0A01_0200), Some(NextHop(1)));
        assert_eq!(trie.lookup(0x0A01_0300), None);
        assert_eq!(trie.lookup(0x0A02_0000), None);
    }

    #[test]
    fn agrees_with_oracle_on_synthetic_table() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(17);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut addrs: Vec<u32> = (0..300).map(|_| rng.gen()).collect();
        for e in rt.entries().iter().step_by(5) {
            addrs.push(e.prefix.first_addr());
            addrs.push(e.prefix.last_addr());
        }
        assert_agrees(&rt, addrs.into_iter());
    }

    #[test]
    fn chunk_density_variants() {
        // Force a dense chunk: 32 alternating /24-ish routes under one /16.
        let mut entries = Vec::new();
        for i in 0..32u16 {
            entries.push(RouteEntry {
                prefix: format!("10.1.{}.0/24", i * 8).parse().unwrap(),
                next_hop: NextHop(i % 4),
            });
        }
        let rt = RoutingTable::from_entries(entries);
        let trie = LuleaTrie::build(&rt);
        for i in 0..32u32 {
            let addr = 0x0A01_0000 | (i * 8) << 8 | 1;
            assert_eq!(
                trie.lookup(addr),
                rt.longest_match(addr).map(|e| e.next_hop)
            );
        }
        // Force a very dense chunk: alternate values on odd/even /24s.
        let mut entries = Vec::new();
        for i in 0..=255u16 {
            entries.push(RouteEntry {
                prefix: format!("10.2.{i}.0/24").parse().unwrap(),
                next_hop: NextHop(i % 2),
            });
        }
        let rt = RoutingTable::from_entries(entries);
        let trie = LuleaTrie::build(&rt);
        for i in (0..=255u32).step_by(17) {
            let addr = 0x0A02_0000 | i << 8 | 3;
            assert_eq!(trie.lookup(addr), Some(NextHop((i % 2) as u16)));
        }
    }

    #[test]
    fn level3_density_variants() {
        // Very dense at level 3: alternate next hops across all 256 /32s
        // under one /24 (128 + 128 heads); plus sparse level-3 chunks.
        let mut entries = Vec::new();
        for i in 0..=255u16 {
            entries.push(RouteEntry {
                prefix: format!("10.9.9.{i}/32").parse().unwrap(),
                next_hop: NextHop(i % 2),
            });
        }
        entries.push(RouteEntry {
            prefix: "10.9.8.7/32".parse().unwrap(),
            next_hop: NextHop(7),
        });
        entries.push(RouteEntry {
            prefix: "10.9.0.0/16".parse().unwrap(),
            next_hop: NextHop(9),
        });
        let rt = RoutingTable::from_entries(entries);
        let trie = LuleaTrie::build(&rt);
        for i in (0..=255u32).step_by(13) {
            assert_eq!(
                trie.lookup(0x0A09_0900 | i),
                Some(NextHop((i % 2) as u16)),
                "host {i}"
            );
        }
        assert_eq!(trie.lookup(0x0A09_0807), Some(NextHop(7)));
        assert_eq!(trie.lookup(0x0A09_0806), Some(NextHop(9))); // /16 fallback
        let (l2, l3) = trie.chunk_counts();
        assert_eq!(l2, 1);
        assert_eq!(l3, 2); // one very dense, one sparse
    }

    #[test]
    fn storage_well_under_binary_trie() {
        use crate::binary::BinaryTrie;
        // Small table: the fixed level-1/maptable floor dominates, but
        // Lulea must still undercut the binary trie.
        let rt = synth::small(23);
        let lulea = LuleaTrie::build(&rt);
        let binary = BinaryTrie::build(&rt);
        assert!(
            lulea.storage_bytes() < binary.storage_bytes(),
            "lulea {} vs binary {}",
            lulea.storage_bytes(),
            binary.storage_bytes()
        );
        // Backbone-scale table: compression pays off by a wide margin.
        let rt = synth::synthesize(&synth::SynthConfig::sized(20_000, 23));
        let lulea = LuleaTrie::build(&rt);
        let binary = BinaryTrie::build(&rt);
        assert!(
            lulea.storage_bytes() * 3 < binary.storage_bytes(),
            "lulea {} vs binary {}",
            lulea.storage_bytes(),
            binary.storage_bytes()
        );
        assert!(lulea.total_heads() > 0);
    }

    #[test]
    fn delta_patch_matches_rebuild() {
        let mut rt = table(&[
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 7),
            ("10.1.2.0/24", 2),
            ("10.1.2.128/25", 3),
            ("10.9.9.9/32", 6),
        ]);
        let mut trie = LuleaTrie::build(&rt);
        let steps: &[(&str, Option<u16>)] = &[
            ("10.2.0.0/16", Some(9)),    // announce at level 1
            ("10.1.2.128/25", None),     // withdraw under an l2 chunk
            ("10.1.2.3/32", Some(4)),    // announce creating an l3 chunk
            ("10.1.0.0/16", Some(5)),    // re-target: chunk default changes
            ("10.1.2.0/24", None),       // withdraw inside the chunk
            ("10.1.2.3/32", None),       // last deep route under the base
            ("10.9.9.9/32", None),       // free the other chunk
            ("10.2.0.0/16", None),       // withdraw merges level-1 heads
            ("172.16.31.0/28", Some(8)), // fresh deep route reuses freed ids
        ];
        for &(s, nh) in steps {
            let p: Prefix = s.parse().unwrap();
            match nh {
                Some(nh) => rt.insert(RouteEntry {
                    prefix: p,
                    next_hop: NextHop(nh),
                }),
                None => {
                    rt.remove(p);
                }
            }
            trie.apply_delta(&[p], &rt).expect("patchable");
            let fresh = LuleaTrie::build(&rt);
            let mut probes: Vec<u32> = Vec::new();
            for e in rt.entries() {
                for a in [e.prefix.first_addr(), e.prefix.last_addr()] {
                    probes.extend([a.wrapping_sub(1), a, a.wrapping_add(1)]);
                }
            }
            probes.extend([0, u32::MAX, 0x0A01_0203, 0x0A09_0909, 0xAC10_1F05]);
            for probe in probes {
                assert_eq!(
                    trie.lookup(probe),
                    fresh.lookup(probe),
                    "step {s}, probe {probe:#010x}"
                );
                assert_eq!(
                    trie.lookup(probe),
                    rt.longest_match(probe).map(|e| e.next_hop),
                    "oracle at step {s}, probe {probe:#010x}"
                );
            }
            assert_eq!(trie.route_count(), rt.len());
        }
    }

    #[test]
    fn delta_declines_very_short_prefixes() {
        let rt = table(&[("0.0.0.0/0", 1)]);
        let mut trie = LuleaTrie::build(&rt);
        assert!(trie
            .apply_delta(&["0.0.0.0/0".parse().unwrap()], &rt)
            .is_none());
        assert!(trie
            .apply_delta(&["10.0.0.0/4".parse().unwrap()], &rt)
            .is_some());
    }

    #[test]
    fn access_count_in_paper_band() {
        use rand::{Rng, SeedableRng};
        let rt = synth::synthesize(&synth::SynthConfig::sized(20_000, 3));
        let trie = LuleaTrie::build(&rt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // Addresses drawn inside random routes (covered traffic).
        let addrs: Vec<u32> = (0..5_000)
            .map(|_| {
                let e = rt.entries()[rng.gen_range(0..rt.len())];
                let span = e.prefix.size();
                e.prefix.first_addr() + (rng.gen::<u64>() % span) as u32
            })
            .collect();
        let mean = crate::mean_accesses(&trie, &addrs);
        // §5.1: ~6.2-6.6 accesses per lookup for backbone tables.
        assert!((4.5..9.0).contains(&mean), "mean accesses {mean}");
    }
}
