//! Incremental-update accounting shared by the LPM engines.
//!
//! SPAL keeps every LC's ROT partition resident in fast memory while BGP
//! churn rewrites it; the update path therefore matters as much as the
//! lookup path. [`crate::Lpm::apply_delta`] lets an engine patch itself
//! in place after a batch of route changes instead of being rebuilt from
//! scratch, and [`DeltaStats`] records how much memory the patch actually
//! rewrote so the dataplane can show the work is O(delta), not O(table).

/// What an in-place patch touched. Returned by
/// [`crate::Lpm::apply_delta`] so callers can account update cost in
/// bytes rather than wall-clock alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Changed prefixes the engine applied.
    pub prefixes_applied: usize,
    /// Bytes of engine memory rewritten (slots, codewords, pointer
    /// splices, rebuilt chunks/subtries), under the same byte models as
    /// [`crate::Lpm::storage_bytes`].
    pub bytes_touched: usize,
}

impl DeltaStats {
    /// Accumulate another patch's counters into this one.
    pub fn absorb(&mut self, other: DeltaStats) {
        self.prefixes_applied += other.prefixes_applied;
        self.bytes_touched += other.bytes_touched;
    }
}
