//! SPAL core — the paper's primary contribution.
//!
//! * [`bits`] — the §3.1 greedy, recursive selection of partitioning bit
//!   positions under Criterion 1 (minimise Φ*, the wildcard replication)
//!   and Criterion 2 (minimise |Φ0 − Φ1|, the size imbalance);
//! * [`partition`] — ROT-partition construction (prefixes whose chosen
//!   bits are `*` are replicated into every matching partition), the
//!   mapping of 2^η bit groups onto an *arbitrary* number ψ of line cards
//!   (ψ need not be a power of two), and the LR1/LR2-style home-LC
//!   detector;
//! * [`fwd`] — a forwarding-table wrapper selecting one of the `spal-lpm`
//!   algorithms per line card;
//! * [`router`] — the functional (untimed) SPAL router: partitioned
//!   tables + per-LC LR-caches + home routing, with full result-sharing
//!   semantics; the cycle-accurate version lives in `spal-sim`;
//! * [`baseline`] — the comparison points: a conventional router (full
//!   table per LC, no caches), a cache-only router (ref \[6\]-style), and
//!   the partition-by-length scheme of ref \[1\].

pub mod baseline;
pub mod bits;
pub mod fwd;
pub mod fwd6;
pub mod partition;
pub mod router;
pub mod v6;

pub use bits::{select_bits, BitScore, BitSelectionStrategy};
pub use fwd::{ForwardingTable, LpmAlgorithm};
pub use fwd6::{ForwardingTable6, LpmAlgorithm6};
pub use partition::{PartitionStats, Partitioning};
pub use router::{LookupOutcome, SpalRouter, SpalRouterConfig};
pub use v6::{select_bits6, Partitioning6};
