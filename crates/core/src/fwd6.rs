//! IPv6 forwarding tables: one 128-bit LPM structure per line card.
//!
//! The v6 mirror of [`crate::fwd`]: the SHIP-style two-level engine is
//! the production structure, the generic binary trie the reference
//! (and the natively incremental fallback).

use spal_lpm::binary::GenericBinaryTrie;
use spal_lpm::ship::Ship6;
use spal_lpm::{CountedLookup, DeltaStats, Lpm6};
use spal_rib::v6::{Prefix6, RoutingTable6};

/// Which IPv6 LPM structure a forwarding engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpmAlgorithm6 {
    /// SHIP-style two-level engine: 16-bit address-block bins over
    /// prefix-characteristic-grouped hybrid tries.
    #[default]
    Ship,
    /// Generic 128-bit binary trie (reference implementation).
    Binary,
}

impl LpmAlgorithm6 {
    /// Short display name.
    pub fn label(self) -> &'static str {
        match self {
            LpmAlgorithm6::Ship => "SHIP",
            LpmAlgorithm6::Binary => "Binary6",
        }
    }
}

/// One line card's IPv6 forwarding table under the chosen algorithm.
#[derive(Debug)]
pub enum ForwardingTable6 {
    Ship(Ship6),
    Binary(GenericBinaryTrie<u128>),
}

impl ForwardingTable6 {
    /// Build a forwarding table from a (partitioned) v6 routing table.
    pub fn build(algorithm: LpmAlgorithm6, table: &RoutingTable6) -> Self {
        match algorithm {
            LpmAlgorithm6::Ship => ForwardingTable6::Ship(Ship6::build(table)),
            LpmAlgorithm6::Binary => ForwardingTable6::Binary(GenericBinaryTrie::build6(table)),
        }
    }
}

impl Lpm6 for ForwardingTable6 {
    fn lookup(&self, addr: u128) -> Option<spal_rib::NextHop> {
        match self {
            ForwardingTable6::Ship(t) => t.lookup(addr),
            ForwardingTable6::Binary(t) => Lpm6::lookup(t, addr),
        }
    }

    fn lookup_counted(&self, addr: u128) -> CountedLookup {
        match self {
            ForwardingTable6::Ship(t) => t.lookup_counted(addr),
            ForwardingTable6::Binary(t) => Lpm6::lookup_counted(t, addr),
        }
    }

    /// One dispatch per batch, so the inner engine's interleaved path
    /// runs at full speed.
    fn lookup_batch(&self, addrs: &[u128], out: &mut [CountedLookup]) {
        match self {
            ForwardingTable6::Ship(t) => t.lookup_batch(addrs, out),
            ForwardingTable6::Binary(t) => Lpm6::lookup_batch(t, addrs, out),
        }
    }

    /// See [`Lpm6::apply_delta`]: SHIP patches bin-granularly and may
    /// decline (the caller rebuilds); the binary trie never declines.
    fn apply_delta(&mut self, changed: &[Prefix6], rib: &RoutingTable6) -> Option<DeltaStats> {
        match self {
            ForwardingTable6::Ship(t) => t.apply_delta(changed, rib),
            ForwardingTable6::Binary(t) => Lpm6::apply_delta(t, changed, rib),
        }
    }

    fn storage_bytes(&self) -> usize {
        match self {
            ForwardingTable6::Ship(t) => t.storage_bytes(),
            ForwardingTable6::Binary(t) => Lpm6::storage_bytes(t),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ForwardingTable6::Ship(t) => t.name(),
            ForwardingTable6::Binary(_) => "Binary6",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::v6::synthesize6_dfz;

    #[test]
    fn both_algorithms_agree_with_oracle() {
        let rt = synthesize6_dfz(2_000, 17);
        let ship = ForwardingTable6::build(LpmAlgorithm6::Ship, &rt);
        let binary = ForwardingTable6::build(LpmAlgorithm6::Binary, &rt);
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for i in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = if i % 2 == 0 {
                let e = rt.entries()[(i * 31) % rt.len()];
                e.prefix.bits() | x as u128
            } else {
                (x as u128) << 64 | x.rotate_left(17) as u128
            };
            let oracle = rt.longest_match(addr).map(|e| e.next_hop);
            assert_eq!(ship.lookup(addr), oracle, "SHIP at {addr:#034x}");
            assert_eq!(binary.lookup(addr), oracle, "binary at {addr:#034x}");
        }
    }

    #[test]
    fn forwarding_table6_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ForwardingTable6>();
    }

    #[test]
    fn labels() {
        assert_eq!(LpmAlgorithm6::Ship.label(), "SHIP");
        assert_eq!(LpmAlgorithm6::Binary.label(), "Binary6");
        let rt = synthesize6_dfz(100, 3);
        let t = ForwardingTable6::build(LpmAlgorithm6::Ship, &rt);
        assert_eq!(t.name(), "SHIP");
    }
}
