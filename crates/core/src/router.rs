//! The functional (untimed) SPAL router: ψ line cards, each with a
//! partitioned forwarding table and an LR-cache, sharing lookup results
//! through home-LC caching exactly as §3.3 describes — minus the cycle
//! timing, which `spal-sim` adds on top.
//!
//! This model processes one packet to completion at a time, so the W-bit
//! waiting machinery never engages here; what it *does* exercise — and
//! what its tests pin down — is the full result-sharing semantics: local
//! vs remote homes, LOC/REM cache fills at both ends, and the invariant
//! that every lookup returns exactly the full-table longest-prefix match.

use crate::fwd::{ForwardingTable, LpmAlgorithm};
use crate::partition::Partitioning;
use spal_cache::{FillOutcome, LrCache, LrCacheConfig, Origin, ProbeResult};
use spal_lpm::Lpm;
use spal_rib::{NextHop, RoutingTable};

/// Configuration of a SPAL router.
#[derive(Debug, Clone)]
pub struct SpalRouterConfig {
    /// Number of line cards ψ (any integer ≥ 1).
    pub psi: usize,
    /// LPM algorithm for every FE.
    pub algorithm: LpmAlgorithm,
    /// LR-cache configuration (β, associativity, γ, victim size, …).
    pub cache: LrCacheConfig,
}

impl Default for SpalRouterConfig {
    fn default() -> Self {
        SpalRouterConfig {
            psi: 16,
            algorithm: LpmAlgorithm::Lulea,
            cache: LrCacheConfig::paper(4096),
        }
    }
}

/// How a lookup was satisfied — the untimed analogue of the §3.3 flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupOutcome {
    /// Hit in the arrival LC's LR-cache.
    LocalCacheHit,
    /// Missed locally; the address is homed at the arrival LC and its FE
    /// ran the matching algorithm.
    LocalFeLookup,
    /// Missed locally; the home LC's LR-cache already had the result.
    RemoteCacheHit,
    /// Missed locally and at the home LC; the home FE ran the matching
    /// algorithm and replied.
    RemoteFeLookup,
}

/// One line card: its FE's forwarding table plus its LR-cache.
struct LineCard {
    fwd: ForwardingTable,
    cache: LrCache<Option<NextHop>>,
}

/// The functional SPAL router.
pub struct SpalRouter {
    partitioning: Partitioning,
    lcs: Vec<LineCard>,
    fe_lookups: Vec<u64>,
    fabric_requests: u64,
}

impl SpalRouter {
    /// Build a router: select partitioning bits, fragment the table, and
    /// construct each LC's trie and LR-cache.
    pub fn build(table: &RoutingTable, config: &SpalRouterConfig) -> Self {
        let eta = crate::bits::eta_for(config.psi);
        let bits = crate::bits::select_bits(table, eta);
        Self::build_with_bits(table, config, bits)
    }

    /// Build with explicit partitioning bits (for experiments that sweep
    /// or fix them).
    pub fn build_with_bits(table: &RoutingTable, config: &SpalRouterConfig, bits: Vec<u8>) -> Self {
        let partitioning = Partitioning::new(table, bits, config.psi);
        let lcs = partitioning
            .forwarding_tables(table)
            .iter()
            .enumerate()
            .map(|(i, part)| LineCard {
                fwd: ForwardingTable::build(config.algorithm, part),
                cache: LrCache::new(LrCacheConfig {
                    seed: config.cache.seed.wrapping_add(i as u64),
                    ..config.cache.clone()
                }),
            })
            .collect();
        SpalRouter {
            partitioning,
            lcs,
            fe_lookups: vec![0; config.psi],
            fabric_requests: 0,
        }
    }

    /// The partitioning in use.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Number of line cards.
    pub fn psi(&self) -> usize {
        self.lcs.len()
    }

    /// Per-LC FE lookup counts (load balance diagnostics).
    pub fn fe_lookups(&self) -> &[u64] {
        &self.fe_lookups
    }

    /// Requests that crossed the fabric.
    pub fn fabric_requests(&self) -> u64 {
        self.fabric_requests
    }

    /// Cache statistics of one LC.
    pub fn cache_stats(&self, lc: usize) -> &spal_cache::CacheStats {
        self.lcs[lc].cache.stats()
    }

    /// Total SRAM across one LC: forwarding trie + LR-cache (6 B/block
    /// under IPv4, §6).
    pub fn lc_storage_bytes(&self, lc: usize) -> usize {
        self.lcs[lc].fwd.storage_bytes() + self.lcs[lc].cache.config().blocks * 6
    }

    /// Process one packet arriving at `arrival_lc`: returns the lookup
    /// result and how it was obtained. Cache contents update exactly as
    /// in §3.3 (LOC fill at the home LC, REM fill at the arrival LC).
    pub fn lookup(&mut self, arrival_lc: u16, addr: u32) -> (Option<NextHop>, LookupOutcome) {
        assert!((arrival_lc as usize) < self.lcs.len(), "no such LC");
        // 1. Probe the arrival LC's LR-cache.
        if let ProbeResult::Hit { value, .. } = self.lcs[arrival_lc as usize].cache.probe(addr) {
            return (value, LookupOutcome::LocalCacheHit);
        }
        let home = self.partitioning.home_of(addr);
        if home == arrival_lc {
            // 2a. Local home: the local FE resolves it; fill as LOC.
            let nh = self.fe_lookup(home, addr);
            let _ = self.lcs[arrival_lc as usize]
                .cache
                .fill(addr, nh, Origin::Loc);
            return (nh, LookupOutcome::LocalFeLookup);
        }
        // 2b. Remote home: request crosses the fabric.
        self.fabric_requests += 1;
        let (nh, outcome) = match self.lcs[home as usize].cache.probe(addr) {
            ProbeResult::Hit { value, .. } => (value, LookupOutcome::RemoteCacheHit),
            _ => {
                // Home FE resolves and caches as LOC; the block then
                // serves "upcoming lookup requests … from any LC".
                let nh = self.fe_lookup(home, addr);
                let _ = self.lcs[home as usize].cache.fill(addr, nh, Origin::Loc);
                (nh, LookupOutcome::RemoteFeLookup)
            }
        };
        // 3. The reply fills the arrival LC's cache as REM.
        let fill = self.lcs[arrival_lc as usize]
            .cache
            .fill(addr, nh, Origin::Rem);
        debug_assert_ne!(
            fill,
            FillOutcome::CompletedWaiting,
            "untimed model never waits"
        );
        (nh, outcome)
    }

    /// Flush every LR-cache (a routing-table update, §3.2).
    pub fn flush_caches(&mut self) {
        for lc in &mut self.lcs {
            lc.cache.flush();
        }
    }

    /// Apply one routing update: the route reaches exactly the LCs whose
    /// partitions contain it (wildcards in the chosen bits replicate it),
    /// and every LR-cache flushes — the §3.2 protocol. Returns `false`
    /// when the configured LPM structure cannot update in place (rebuild
    /// the router instead).
    pub fn apply_update(&mut self, update: spal_rib::updates::Update) -> bool {
        if !self.lcs[0].fwd.supports_incremental_updates() {
            return false;
        }
        let prefix = match update {
            spal_rib::updates::Update::Announce(e) => e.prefix,
            spal_rib::updates::Update::Withdraw(p) => p,
        };
        for lc in self.partitioning.lcs_of_prefix(prefix) {
            let fwd = &mut self.lcs[lc as usize].fwd;
            match update {
                spal_rib::updates::Update::Announce(e) => {
                    fwd.announce(e.prefix, e.next_hop);
                }
                spal_rib::updates::Update::Withdraw(p) => {
                    fwd.withdraw(p);
                }
            }
        }
        self.flush_caches();
        true
    }

    fn fe_lookup(&mut self, lc: u16, addr: u32) -> Option<NextHop> {
        self.fe_lookups[lc as usize] += 1;
        self.lcs[lc as usize].fwd.lookup(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::synth;

    fn small_router(psi: usize) -> (RoutingTable, SpalRouter) {
        let rt = synth::small(51);
        let router = SpalRouter::build(
            &rt,
            &SpalRouterConfig {
                psi,
                algorithm: LpmAlgorithm::Lulea,
                cache: LrCacheConfig {
                    blocks: 256,
                    ..LrCacheConfig::default()
                },
            },
        );
        (rt, router)
    }

    #[test]
    fn lookups_match_full_table() {
        use rand::{Rng, SeedableRng};
        let (rt, mut router) = small_router(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        for _ in 0..500 {
            let addr: u32 = rng.gen();
            let arrival = rng.gen_range(0..4) as u16;
            let (nh, _) = router.lookup(arrival, addr);
            assert_eq!(nh, rt.longest_match(addr).map(|e| e.next_hop));
        }
    }

    #[test]
    fn second_lookup_hits_local_cache() {
        let (rt, mut router) = small_router(4);
        let addr = rt.entries()[100].prefix.first_addr();
        let (nh1, o1) = router.lookup(0, addr);
        assert_ne!(o1, LookupOutcome::LocalCacheHit);
        let (nh2, o2) = router.lookup(0, addr);
        assert_eq!(o2, LookupOutcome::LocalCacheHit);
        assert_eq!(nh1, nh2);
    }

    #[test]
    fn home_result_shared_across_lcs() {
        let (rt, mut router) = small_router(4);
        // Find an address whose home is LC 2 and send it from LC 0.
        let addr = rt
            .entries()
            .iter()
            .map(|e| e.prefix.first_addr())
            .find(|&a| router.partitioning().home_of(a) == 2)
            .expect("some address homes at LC 2");
        let (_, o1) = router.lookup(0, addr);
        assert_eq!(o1, LookupOutcome::RemoteFeLookup);
        // A different LC asking for the same address hits the home cache:
        // the FE is not consulted again.
        let (_, o2) = router.lookup(1, addr);
        assert_eq!(o2, LookupOutcome::RemoteCacheHit);
        // And the home LC itself hits its own (LOC) block.
        let (_, o3) = router.lookup(2, addr);
        assert_eq!(o3, LookupOutcome::LocalCacheHit);
        assert_eq!(router.fe_lookups()[2], 1);
    }

    #[test]
    fn local_home_does_not_touch_fabric() {
        let (rt, mut router) = small_router(4);
        let addr = rt
            .entries()
            .iter()
            .map(|e| e.prefix.first_addr())
            .find(|&a| router.partitioning().home_of(a) == 1)
            .unwrap();
        let before = router.fabric_requests();
        let (_, o) = router.lookup(1, addr);
        assert_eq!(o, LookupOutcome::LocalFeLookup);
        assert_eq!(router.fabric_requests(), before);
    }

    #[test]
    fn flush_forces_fe_lookups_again() {
        let (rt, mut router) = small_router(2);
        let addr = rt.entries()[5].prefix.first_addr();
        router.lookup(0, addr);
        router.lookup(0, addr);
        let before = router.fe_lookups().iter().sum::<u64>();
        router.flush_caches();
        let (_, o) = router.lookup(0, addr);
        assert_ne!(o, LookupOutcome::LocalCacheHit);
        assert_eq!(router.fe_lookups().iter().sum::<u64>(), before + 1);
    }

    #[test]
    fn apply_update_keeps_router_consistent() {
        use spal_rib::updates::{apply, update_stream, Update, UpdateStreamConfig};
        let rt = synth::synthesize(&synth::SynthConfig::sized(2_000, 151));
        // DP trie supports in-place updates.
        let mut router = SpalRouter::build(
            &rt,
            &SpalRouterConfig {
                psi: 4,
                algorithm: LpmAlgorithm::Dp,
                cache: LrCacheConfig {
                    blocks: 256,
                    ..LrCacheConfig::default()
                },
            },
        );
        let (updates, final_table) = update_stream(
            &rt,
            &UpdateStreamConfig {
                count: 400,
                withdraw_fraction: 0.3,
                seed: 3,
            },
        );
        let mut oracle = rt.clone();
        for &u in &updates {
            assert!(router.apply_update(u));
            apply(&mut oracle, u);
        }
        assert_eq!(oracle.entries(), final_table.entries());
        // After churn, lookups from every LC match the updated table.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..300 {
            let addr: u32 = rng.gen();
            let lc = rng.gen_range(0..4) as u16;
            let (nh, _) = router.lookup(lc, addr);
            assert_eq!(nh, final_table.longest_match(addr).map(|e| e.next_hop));
        }
        // A withdrawn route is really gone everywhere.
        if let Some(Update::Withdraw(p)) = updates
            .iter()
            .rev()
            .find(|u| matches!(u, Update::Withdraw(_)))
        {
            if final_table.longest_match(p.first_addr()).is_none() {
                let (nh, _) = router.lookup(0, p.first_addr());
                assert_eq!(nh, None);
            }
        }
    }

    #[test]
    fn compressed_structures_refuse_in_place_updates() {
        use spal_rib::updates::Update;
        let rt = synth::small(153);
        let mut router = SpalRouter::build(
            &rt,
            &SpalRouterConfig {
                psi: 2,
                algorithm: LpmAlgorithm::Lulea,
                cache: LrCacheConfig {
                    blocks: 256,
                    ..LrCacheConfig::default()
                },
            },
        );
        let e = rt.entries()[0];
        assert!(!router.apply_update(Update::Announce(e)));
    }

    #[test]
    fn psi_one_router_works() {
        let (rt, mut router) = small_router(1);
        let addr = rt.entries()[0].prefix.first_addr();
        let (nh, o) = router.lookup(0, addr);
        assert_eq!(o, LookupOutcome::LocalFeLookup);
        assert_eq!(nh, rt.longest_match(addr).map(|e| e.next_hop));
        assert_eq!(router.fabric_requests(), 0);
    }

    #[test]
    fn uncovered_address_negative_result_is_cached() {
        let (rt, mut router) = small_router(4);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let addr = loop {
            let a: u32 = rng.gen();
            if !rt.covers(a) {
                break a;
            }
        };
        let (nh1, _) = router.lookup(0, addr);
        assert_eq!(nh1, None);
        // The negative result is cached too (a block holds Option).
        let (nh2, o2) = router.lookup(0, addr);
        assert_eq!(nh2, None);
        assert_eq!(o2, LookupOutcome::LocalCacheHit);
    }

    #[test]
    fn storage_accounting_includes_cache() {
        let (_, router) = small_router(2);
        let s = router.lc_storage_bytes(0);
        assert!(s > 256 * 6, "must include the LR-cache bytes");
    }
}
