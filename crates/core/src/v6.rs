//! SPAL over IPv6 — the §6 claim ("SPAL is feasibly applicable to
//! IPv6") made concrete: the same two-criteria bit selection and
//! ROT-partitioning, over 128-bit prefixes.
//!
//! The machinery is shared with IPv4 through [`spal_rib::bits::IpPrefix`];
//! this module provides the IPv6-typed surface: [`select_bits6`] and
//! [`Partitioning6`].

use crate::bits::{select_bits_generic, BitSelectionStrategy};
use crate::partition::groups_of_prefix;
use spal_rib::bits::AddressBits;
use spal_rib::v6::{Prefix6, RouteEntry6, RoutingTable6};

/// Select `eta` partitioning bits for an IPv6 table. Candidates are
/// restricted to positions `0..=63` — IPv6 interface identifiers (the
/// low 64 bits) are host bits, wild in almost every routed prefix, so
/// Criterion 1 excludes them just as it excludes positions >24 in IPv4.
pub fn select_bits6(table: &RoutingTable6, eta: usize) -> Vec<u8> {
    let prefixes: Vec<Prefix6> = table.entries().iter().map(|e| e.prefix).collect();
    select_bits_generic(&prefixes, eta, 63, BitSelectionStrategy::default())
}

/// An IPv6 partitioning: chosen bits plus the group→LC mapping.
#[derive(Debug, Clone)]
pub struct Partitioning6 {
    bits: Vec<u8>,
    group_to_lc: Vec<u16>,
    psi: usize,
}

impl Partitioning6 {
    /// Partition an IPv6 table over `psi` LCs with the given bits.
    ///
    /// # Panics
    /// As [`crate::partition::Partitioning::new`]: `psi ≥ 1`, enough
    /// groups, distinct bits.
    pub fn new(table: &RoutingTable6, bits: Vec<u8>, psi: usize) -> Self {
        assert!(psi >= 1, "a router needs at least one LC");
        let groups = 1usize << bits.len();
        assert!(
            groups >= psi,
            "2^{} groups cannot cover {psi} LCs",
            bits.len()
        );
        {
            let mut b = bits.clone();
            b.sort_unstable();
            b.dedup();
            assert_eq!(b.len(), bits.len(), "bit positions must be distinct");
        }
        let mut sizes = vec![0usize; groups];
        for e in table.entries() {
            for g in groups_of_prefix(&bits, e.prefix) {
                sizes[g] += 1;
            }
        }
        let group_to_lc = crate::partition::balance_groups(&sizes, psi);
        Partitioning6 {
            bits,
            group_to_lc,
            psi,
        }
    }

    /// The chosen bit positions.
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// Number of line cards.
    pub fn psi(&self) -> usize {
        self.psi
    }

    /// The home LC of a 128-bit destination address.
    #[inline]
    pub fn home_of(&self, addr: u128) -> u16 {
        let mut g = 0usize;
        for &b in &self.bits {
            g = (g << 1) | addr.bit(b) as usize;
        }
        self.group_to_lc[g]
    }

    /// Every LC whose partition holds `prefix` (wildcard partitioning
    /// bits replicate a prefix across several) — the control plane's
    /// dispatch set for one route update.
    pub fn lcs_of_prefix(&self, prefix: Prefix6) -> Vec<u16> {
        let mut lcs: Vec<u16> = groups_of_prefix(&self.bits, prefix)
            .map(|g| self.group_to_lc[g])
            .collect();
        lcs.sort_unstable();
        lcs.dedup();
        lcs
    }

    /// The per-LC forwarding tables (ROT-partitions merged per LC).
    pub fn forwarding_tables(&self, table: &RoutingTable6) -> Vec<RoutingTable6> {
        let mut per_lc: Vec<Vec<RouteEntry6>> = vec![Vec::new(); self.psi];
        for e in table.entries() {
            let mut lcs: Vec<u16> = groups_of_prefix(&self.bits, e.prefix)
                .map(|g| self.group_to_lc[g])
                .collect();
            lcs.sort_unstable();
            lcs.dedup();
            for lc in lcs {
                per_lc[lc as usize].push(*e);
            }
        }
        per_lc
            .into_iter()
            .map(RoutingTable6::from_entries)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::v6::synthesize6;

    #[test]
    fn bits_stay_in_routing_prefix_range() {
        let table = synthesize6(5_000, 31);
        let bits = select_bits6(&table, 4);
        assert_eq!(bits.len(), 4);
        // The heavy lengths are /32 and /48, so useful bits sit below 48.
        assert!(bits.iter().all(|&b| b < 48), "bits {bits:?}");
    }

    #[test]
    fn home_lookup_equals_full_lookup_v6() {
        use rand::{Rng, SeedableRng};
        let table = synthesize6(4_000, 33);
        for psi in [3usize, 4, 8] {
            let eta = crate::bits::eta_for(psi);
            let part = Partitioning6::new(&table, select_bits6(&table, eta), psi);
            let tables = part.forwarding_tables(&table);
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            for _ in 0..200 {
                // Mix addresses inside known prefixes with randoms.
                let addr = if rng.gen_bool(0.7) {
                    let e = table.entries()[rng.gen_range(0..table.len())];
                    e.prefix.bits() | (rng.gen::<u128>() >> e.prefix.len().max(1))
                } else {
                    rng.gen()
                };
                let home = part.home_of(addr) as usize;
                assert_eq!(
                    tables[home].longest_match(addr).map(|e| e.next_hop),
                    table.longest_match(addr).map(|e| e.next_hop),
                    "psi {psi}"
                );
            }
        }
    }

    #[test]
    fn partitions_shrink_v6() {
        let table = synthesize6(8_000, 35);
        let part = Partitioning6::new(&table, select_bits6(&table, 4), 16);
        let tables = part.forwarding_tables(&table);
        let max = tables.iter().map(|t| t.len()).max().unwrap();
        assert!(max < table.len() / 8, "max partition {max}");
        let total: usize = tables.iter().map(|t| t.len()).sum();
        // Modest replication only.
        assert!(total < table.len() + table.len() / 2);
    }

    #[test]
    #[should_panic]
    fn duplicate_bits_rejected_v6() {
        let table = synthesize6(100, 37);
        let _ = Partitioning6::new(&table, vec![5, 5], 4);
    }
}
