//! Forwarding tables: one LPM structure per line card, algorithm chosen
//! at router-configuration time.

use spal_lpm::binary::BinaryTrie;
use spal_lpm::dir24::Dir24_8;
use spal_lpm::dp::DpTrie;
use spal_lpm::lctrie::LcTrie;
use spal_lpm::lulea::LuleaTrie;
use spal_lpm::multibit::MultibitTrie;
use spal_lpm::poptrie::Poptrie;
use spal_lpm::{CountedLookup, DeltaStats, Lpm};
use spal_rib::{Prefix, RoutingTable};

/// Which published LPM algorithm a forwarding engine runs (§4 evaluates
/// all three compressed structures; the binary trie is the reference).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LpmAlgorithm {
    /// Plain binary trie (reference implementation).
    Binary,
    /// DP trie \[8\] — ≈16 memory accesses, 62-cycle FE model.
    Dp,
    /// Lulea trie \[7\] — ≈6.x memory accesses, 40-cycle FE model.
    Lulea,
    /// LC-trie \[12\] with the given fill factor (paper uses 0.25).
    Lc { fill_factor: f64 },
    /// DIR-24-8 hardware scheme \[10\] — 1–2 accesses but a fixed 32 MB
    /// first level *per instance* (§2.1's "huge" memory contrast). Not a
    /// sensible per-LC choice for SPAL; provided as the §2.1 baseline.
    Dir24,
    /// Multibit trie with controlled prefix expansion, 16/8/8 strides —
    /// the middle ground between the compressed tries and DIR-24-8, and
    /// fully patchable in place.
    Multibit,
    /// Popcount-compressed multibit trie (Poptrie-class) with 16-bit
    /// direct root and cache-line-packed 8-bit-stride nodes — the
    /// fewest-cache-lines engine, stem-patchable in place.
    Poptrie,
}

impl LpmAlgorithm {
    /// Short display name.
    pub fn label(self) -> &'static str {
        match self {
            LpmAlgorithm::Binary => "Binary",
            LpmAlgorithm::Dp => "DP",
            LpmAlgorithm::Lulea => "Lulea",
            LpmAlgorithm::Lc { .. } => "LC",
            LpmAlgorithm::Dir24 => "DIR-24-8",
            LpmAlgorithm::Multibit => "Multibit",
            LpmAlgorithm::Poptrie => "Poptrie",
        }
    }
}

/// One line card's forwarding table under the chosen algorithm.
#[derive(Debug)]
pub enum ForwardingTable {
    Binary(BinaryTrie),
    Dp(DpTrie),
    Lulea(LuleaTrie),
    Lc(LcTrie),
    Dir24(Dir24_8),
    Multibit(MultibitTrie),
    Poptrie(Poptrie),
}

impl ForwardingTable {
    /// Whether this structure supports incremental announce/withdraw
    /// (the binary and DP tries do; the compressed structures rebuild).
    pub fn supports_incremental_updates(&self) -> bool {
        matches!(self, ForwardingTable::Binary(_) | ForwardingTable::Dp(_))
    }

    /// Announce (insert or replace) a route incrementally. Returns
    /// `false` when the structure does not support in-place updates (the
    /// caller should rebuild instead).
    pub fn announce(&mut self, prefix: spal_rib::Prefix, next_hop: spal_rib::NextHop) -> bool {
        match self {
            ForwardingTable::Binary(t) => {
                t.insert(prefix.bits(), prefix.len(), next_hop);
                true
            }
            ForwardingTable::Dp(t) => {
                t.insert(prefix, next_hop);
                true
            }
            _ => false,
        }
    }

    /// Withdraw a route incrementally; see [`ForwardingTable::announce`].
    pub fn withdraw(&mut self, prefix: spal_rib::Prefix) -> bool {
        match self {
            ForwardingTable::Binary(t) => {
                t.remove(prefix.bits(), prefix.len());
                true
            }
            ForwardingTable::Dp(t) => {
                t.remove(prefix);
                true
            }
            _ => false,
        }
    }

    /// Build a forwarding table from a (partitioned) routing table.
    pub fn build(algorithm: LpmAlgorithm, table: &RoutingTable) -> Self {
        match algorithm {
            LpmAlgorithm::Binary => ForwardingTable::Binary(BinaryTrie::build(table)),
            LpmAlgorithm::Dp => ForwardingTable::Dp(DpTrie::build(table)),
            LpmAlgorithm::Lulea => ForwardingTable::Lulea(LuleaTrie::build(table)),
            LpmAlgorithm::Lc { fill_factor } => {
                ForwardingTable::Lc(LcTrie::build_with_fill(table, fill_factor))
            }
            LpmAlgorithm::Dir24 => ForwardingTable::Dir24(Dir24_8::build(table)),
            LpmAlgorithm::Multibit => ForwardingTable::Multibit(MultibitTrie::build_16_8_8(table)),
            LpmAlgorithm::Poptrie => ForwardingTable::Poptrie(Poptrie::build(table)),
        }
    }
}

impl Lpm for ForwardingTable {
    fn lookup(&self, addr: u32) -> Option<spal_rib::NextHop> {
        match self {
            ForwardingTable::Binary(t) => t.lookup(addr),
            ForwardingTable::Dp(t) => t.lookup(addr),
            ForwardingTable::Lulea(t) => t.lookup(addr),
            ForwardingTable::Lc(t) => t.lookup(addr),
            ForwardingTable::Dir24(t) => t.lookup(addr),
            ForwardingTable::Multibit(t) => t.lookup(addr),
            ForwardingTable::Poptrie(t) => t.lookup(addr),
        }
    }

    fn lookup_counted(&self, addr: u32) -> CountedLookup {
        match self {
            ForwardingTable::Binary(t) => t.lookup_counted(addr),
            ForwardingTable::Dp(t) => t.lookup_counted(addr),
            ForwardingTable::Lulea(t) => t.lookup_counted(addr),
            ForwardingTable::Lc(t) => t.lookup_counted(addr),
            ForwardingTable::Dir24(t) => t.lookup_counted(addr),
            ForwardingTable::Multibit(t) => t.lookup_counted(addr),
            ForwardingTable::Poptrie(t) => t.lookup_counted(addr),
        }
    }

    /// One dispatch per batch (not per address), so the inner engine's
    /// specialized interleaved path runs at full speed.
    fn lookup_batch(&self, addrs: &[u32], out: &mut [CountedLookup]) {
        match self {
            ForwardingTable::Binary(t) => t.lookup_batch(addrs, out),
            ForwardingTable::Dp(t) => t.lookup_batch(addrs, out),
            ForwardingTable::Lulea(t) => t.lookup_batch(addrs, out),
            ForwardingTable::Lc(t) => t.lookup_batch(addrs, out),
            ForwardingTable::Dir24(t) => t.lookup_batch(addrs, out),
            ForwardingTable::Multibit(t) => t.lookup_batch(addrs, out),
            ForwardingTable::Poptrie(t) => t.lookup_batch(addrs, out),
        }
    }

    /// One dispatch to the wrapped engine's incremental patch path; see
    /// [`Lpm::apply_delta`] for the contract. The binary and DP tries
    /// route through their native insert/remove, so every engine the
    /// dataplane can host is patchable (LC-trie and the compressed
    /// structures may still decline and demand a rebuild).
    fn apply_delta(&mut self, changed: &[Prefix], rib: &RoutingTable) -> Option<DeltaStats> {
        match self {
            ForwardingTable::Binary(t) => t.apply_delta(changed, rib),
            ForwardingTable::Dp(t) => t.apply_delta(changed, rib),
            ForwardingTable::Lulea(t) => t.apply_delta(changed, rib),
            ForwardingTable::Lc(t) => t.apply_delta(changed, rib),
            ForwardingTable::Dir24(t) => t.apply_delta(changed, rib),
            ForwardingTable::Multibit(t) => t.apply_delta(changed, rib),
            ForwardingTable::Poptrie(t) => t.apply_delta(changed, rib),
        }
    }

    fn storage_bytes(&self) -> usize {
        match self {
            ForwardingTable::Binary(t) => t.storage_bytes(),
            ForwardingTable::Dp(t) => t.storage_bytes(),
            ForwardingTable::Lulea(t) => t.storage_bytes(),
            ForwardingTable::Lc(t) => t.storage_bytes(),
            ForwardingTable::Dir24(t) => t.storage_bytes(),
            ForwardingTable::Multibit(t) => t.storage_bytes(),
            ForwardingTable::Poptrie(t) => t.storage_bytes(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            ForwardingTable::Binary(t) => t.name(),
            ForwardingTable::Dp(t) => t.name(),
            ForwardingTable::Lulea(t) => t.name(),
            ForwardingTable::Lc(t) => t.name(),
            ForwardingTable::Dir24(t) => t.name(),
            ForwardingTable::Multibit(t) => t.name(),
            ForwardingTable::Poptrie(t) => t.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::synth;

    #[test]
    fn all_algorithms_agree() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(43);
        let tables: Vec<ForwardingTable> = [
            LpmAlgorithm::Binary,
            LpmAlgorithm::Dp,
            LpmAlgorithm::Lulea,
            LpmAlgorithm::Lc { fill_factor: 0.25 },
            LpmAlgorithm::Poptrie,
        ]
        .into_iter()
        .map(|a| ForwardingTable::build(a, &rt))
        .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..300 {
            let addr: u32 = rng.gen();
            let oracle = rt.longest_match(addr).map(|e| e.next_hop);
            for t in &tables {
                assert_eq!(t.lookup(addr), oracle, "{} at {addr:#010x}", t.name());
            }
        }
    }

    #[test]
    fn forwarding_table_is_send_and_sync() {
        // The replay harness shares one table across scoped threads as
        // `Arc<dyn Lpm + Send + Sync>`; interior mutability in any
        // wrapped engine would break this at compile time.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ForwardingTable>();
    }

    #[test]
    fn labels() {
        assert_eq!(LpmAlgorithm::Lulea.label(), "Lulea");
        assert_eq!(LpmAlgorithm::Lc { fill_factor: 0.25 }.label(), "LC");
        let rt = synth::small(1);
        let t = ForwardingTable::build(LpmAlgorithm::Dp, &rt);
        assert_eq!(t.name(), "DP");
    }

    #[test]
    fn storage_ordering_matches_section4() {
        // §4: Lulea's storage "is often the lowest"; the DP trie is the
        // largest of the three compressed structures.
        let rt = synth::synthesize(&synth::SynthConfig::sized(10_000, 8));
        let lulea = ForwardingTable::build(LpmAlgorithm::Lulea, &rt).storage_bytes();
        let dp = ForwardingTable::build(LpmAlgorithm::Dp, &rt).storage_bytes();
        assert!(lulea < dp, "lulea {lulea} vs dp {dp}");
    }
}
