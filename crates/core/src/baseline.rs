//! Baseline routers the paper compares SPAL against.
//!
//! * [`ConventionalRouter`] — "an existing router, which keeps all
//!   prefixes of the routing table in each LC and has no LR-caches"
//!   (§1/§5.2): every packet pays one full FE lookup at its arrival LC.
//! * [`CacheOnlyRouter`] — ref \[6\]'s processor-caching approach: every
//!   LC keeps the *whole* table plus an LR-cache, no partitioning; the
//!   paper notes its mean lookup time is "independent of ψ and … always
//!   equal to that of ψ = 1" because identical addresses must be looked
//!   up again at every LC.
//! * [`partition_by_length`] — ref \[1\]'s scheme: prefixes grouped by
//!   *length*. Partition sizes vary wildly (≈50 % of a backbone table is
//!   /24), every FE keeps all partitions, and no result is shared.

use crate::fwd::{ForwardingTable, LpmAlgorithm};
use spal_cache::{LrCache, LrCacheConfig, Origin, ProbeResult};
use spal_lpm::Lpm;
use spal_rib::{NextHop, RoutingTable};

/// A conventional router: full table per LC, no result caching.
pub struct ConventionalRouter {
    fwd: ForwardingTable,
    psi: usize,
    fe_lookups: u64,
}

impl ConventionalRouter {
    /// Build. One trie is shared in memory here (all ψ copies are
    /// identical); storage accounting multiplies by ψ.
    pub fn build(table: &RoutingTable, psi: usize, algorithm: LpmAlgorithm) -> Self {
        assert!(psi >= 1);
        ConventionalRouter {
            fwd: ForwardingTable::build(algorithm, table),
            psi,
            fe_lookups: 0,
        }
    }

    /// Look a packet up: always a full FE lookup at the arrival LC.
    pub fn lookup(&mut self, _arrival_lc: u16, addr: u32) -> Option<NextHop> {
        self.fe_lookups += 1;
        self.fwd.lookup(addr)
    }

    /// Total FE lookups performed.
    pub fn fe_lookups(&self) -> u64 {
        self.fe_lookups
    }

    /// SRAM in one LC (the full trie).
    pub fn lc_storage_bytes(&self) -> usize {
        self.fwd.storage_bytes()
    }

    /// SRAM across the router: ψ identical copies.
    pub fn total_storage_bytes(&self) -> usize {
        self.fwd.storage_bytes() * self.psi
    }
}

/// A cache-only router (\[6\]-style): whole table + LR-cache per LC,
/// no partitioning, no result sharing between LCs.
pub struct CacheOnlyRouter {
    fwd: ForwardingTable,
    caches: Vec<LrCache<Option<NextHop>>>,
    fe_lookups: u64,
}

impl CacheOnlyRouter {
    /// Build with ψ LCs and the given cache configuration.
    pub fn build(
        table: &RoutingTable,
        psi: usize,
        algorithm: LpmAlgorithm,
        cache: &LrCacheConfig,
    ) -> Self {
        assert!(psi >= 1);
        let caches = (0..psi)
            .map(|i| {
                LrCache::new(LrCacheConfig {
                    seed: cache.seed.wrapping_add(i as u64),
                    ..cache.clone()
                })
            })
            .collect();
        CacheOnlyRouter {
            fwd: ForwardingTable::build(algorithm, table),
            caches,
            fe_lookups: 0,
        }
    }

    /// Look a packet up at its arrival LC: local cache, else local FE.
    /// Another LC looking up the same address repeats the FE work — the
    /// sharing SPAL adds is exactly what is missing here.
    pub fn lookup(&mut self, arrival_lc: u16, addr: u32) -> (Option<NextHop>, bool) {
        let cache = &mut self.caches[arrival_lc as usize];
        if let ProbeResult::Hit { value, .. } = cache.probe(addr) {
            return (value, true);
        }
        self.fe_lookups += 1;
        let nh = self.fwd.lookup(addr);
        let _ = self.caches[arrival_lc as usize].fill(addr, nh, Origin::Loc);
        (nh, false)
    }

    /// Total FE lookups performed.
    pub fn fe_lookups(&self) -> u64 {
        self.fe_lookups
    }

    /// Cache statistics of one LC.
    pub fn cache_stats(&self, lc: usize) -> &spal_cache::CacheStats {
        self.caches[lc].stats()
    }
}

/// One interval of the address space over which the routing table's
/// longest-prefix match is constant: `[start, end]` inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub start: u32,
    pub end: u32,
    pub next_hop: Option<NextHop>,
}

/// Compute the full interval map of a routing table: disjoint intervals
/// covering the whole 32-bit space, each with a uniform lookup result,
/// adjacent equal-result intervals merged (ref \[6\]'s range-merging
/// step). This is what a range-caching forwarding engine (§2.2) hands to
/// its cache on a miss — and its granularity statistics are the §2.2
/// argument against it: any /32 route forces single-address intervals.
pub fn interval_map(table: &RoutingTable) -> Vec<Interval> {
    use spal_lpm::binary::BinaryTrie;
    // Boundary points: starts of prefixes and the address after their
    // ends (u64 to survive last_addr = u32::MAX).
    let mut bounds: Vec<u64> = vec![0];
    for e in table {
        bounds.push(e.prefix.first_addr() as u64);
        bounds.push(e.prefix.last_addr() as u64 + 1);
    }
    bounds.push(1u64 << 32);
    bounds.sort_unstable();
    bounds.dedup();
    let trie = BinaryTrie::build(table);
    let mut out: Vec<Interval> = Vec::with_capacity(bounds.len());
    for w in bounds.windows(2) {
        let (start, end) = (w[0] as u32, (w[1] - 1) as u32);
        let next_hop = trie.lookup(start);
        match out.last_mut() {
            // Range merging: coalesce equal-result neighbours.
            Some(prev) if prev.next_hop == next_hop => prev.end = end,
            _ => out.push(Interval {
                start,
                end,
                next_hop,
            }),
        }
    }
    out
}

/// Locate the interval containing `addr` (binary search).
pub fn interval_of(map: &[Interval], addr: u32) -> Interval {
    let i = map.partition_point(|iv| iv.end < addr);
    debug_assert!(map[i].contains_addr(addr));
    map[i]
}

impl Interval {
    /// Whether `addr` falls inside this interval.
    #[inline]
    pub fn contains_addr(&self, addr: u32) -> bool {
        self.start <= addr && addr <= self.end
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        self.end as u64 - self.start as u64 + 1
    }
}

/// Granularity statistics of an interval map — the §2.2 quantities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalStats {
    pub count: usize,
    pub min_size: u64,
    pub mean_size: f64,
}

/// Summarise an interval map (only intervals with a route count toward
/// `min_size`; the uncovered gaps between allocations are huge and would
/// mask the granularity signal).
pub fn interval_stats(map: &[Interval]) -> IntervalStats {
    let routed: Vec<&Interval> = map.iter().filter(|iv| iv.next_hop.is_some()).collect();
    let min_size = routed.iter().map(|iv| iv.size()).min().unwrap_or(0);
    let mean_size = if routed.is_empty() {
        0.0
    } else {
        routed.iter().map(|iv| iv.size()).sum::<u64>() as f64 / routed.len() as f64
    };
    IntervalStats {
        count: map.len(),
        min_size,
        mean_size,
    }
}

/// Ref \[1\]'s partitioning: group prefixes by length, then pack the ≤ 33
/// length classes onto `psi` partitions by greedy size balancing (the
/// closest realisable analogue when ψ < 33). Returns the per-partition
/// tables; their wild size imbalance is the point of the comparison.
pub fn partition_by_length(table: &RoutingTable, psi: usize) -> Vec<RoutingTable> {
    assert!(psi >= 1);
    let mut by_len: Vec<Vec<spal_rib::RouteEntry>> = vec![Vec::new(); 33];
    for e in table {
        by_len[e.prefix.len() as usize].push(*e);
    }
    // Greedy: biggest class to least-loaded partition.
    let mut order: Vec<usize> = (0..33).collect();
    order.sort_by_key(|&l| std::cmp::Reverse(by_len[l].len()));
    let mut parts: Vec<Vec<spal_rib::RouteEntry>> = vec![Vec::new(); psi];
    for l in order {
        let p = (0..psi)
            .min_by_key(|&i| (parts[i].len(), i))
            .expect("psi >= 1");
        parts[p].extend(by_len[l].iter().copied());
    }
    parts.into_iter().map(RoutingTable::from_entries).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionStats;
    use spal_rib::synth;

    #[test]
    fn conventional_always_does_fe_work() {
        let rt = synth::small(61);
        let mut r = ConventionalRouter::build(&rt, 4, LpmAlgorithm::Lulea);
        let addr = rt.entries()[0].prefix.first_addr();
        r.lookup(0, addr);
        r.lookup(0, addr);
        r.lookup(1, addr);
        assert_eq!(r.fe_lookups(), 3);
        assert_eq!(r.total_storage_bytes(), 4 * r.lc_storage_bytes());
    }

    #[test]
    fn cache_only_caches_locally_but_not_across_lcs() {
        let rt = synth::small(63);
        let mut r = CacheOnlyRouter::build(
            &rt,
            4,
            LpmAlgorithm::Lulea,
            &LrCacheConfig {
                blocks: 256,
                ..Default::default()
            },
        );
        let addr = rt.entries()[7].prefix.first_addr();
        let (_, hit1) = r.lookup(0, addr);
        assert!(!hit1);
        let (_, hit2) = r.lookup(0, addr);
        assert!(hit2);
        // The same address from another LC misses: no sharing.
        let (_, hit3) = r.lookup(1, addr);
        assert!(!hit3);
        assert_eq!(r.fe_lookups(), 2);
    }

    #[test]
    fn cache_only_matches_oracle() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(65);
        let mut r = CacheOnlyRouter::build(
            &rt,
            2,
            LpmAlgorithm::Dp,
            &LrCacheConfig {
                blocks: 128,
                ..Default::default()
            },
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..300 {
            let addr: u32 = rng.gen();
            let (nh, _) = r.lookup(rng.gen_range(0..2), addr);
            assert_eq!(nh, rt.longest_match(addr).map(|e| e.next_hop));
        }
    }

    #[test]
    fn length_partitioning_is_lossless_but_imbalanced() {
        let rt = synth::synthesize(&synth::SynthConfig::sized(20_000, 9));
        let parts = partition_by_length(&rt, 4);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, rt.len()); // no replication, unlike SPAL
        let stats = PartitionStats::of(rt.len(), parts.iter().map(|p| p.len()));
        // /24 alone is ≈half the table, so one partition dwarfs the rest.
        assert!(
            stats.imbalance_ratio() > 2.0,
            "imbalance {}",
            stats.imbalance_ratio()
        );
    }

    #[test]
    fn interval_map_covers_space_and_matches_oracle() {
        use rand::{Rng, SeedableRng};
        let rt = synth::small(71);
        let map = interval_map(&rt);
        // Full coverage, disjoint, ordered.
        assert_eq!(map[0].start, 0);
        assert_eq!(map.last().unwrap().end, u32::MAX);
        for w in map.windows(2) {
            assert_eq!(w[0].end as u64 + 1, w[1].start as u64);
            assert_ne!(w[0].next_hop, w[1].next_hop, "unmerged neighbours");
        }
        // Interval values equal the oracle everywhere sampled.
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..300 {
            let addr: u32 = rng.gen();
            let iv = interval_of(&map, addr);
            assert!(iv.contains_addr(addr));
            assert_eq!(iv.next_hop, rt.longest_match(addr).map(|e| e.next_hop));
        }
    }

    #[test]
    fn host_routes_force_unit_granularity() {
        // §2.2: a /32 route makes the minimum range size 1.
        let rt = RoutingTable::from_entries([
            spal_rib::RouteEntry {
                prefix: "10.0.0.0/8".parse().unwrap(),
                next_hop: NextHop(1),
            },
            spal_rib::RouteEntry {
                prefix: "10.1.2.3/32".parse().unwrap(),
                next_hop: NextHop(2),
            },
        ]);
        let stats = interval_stats(&interval_map(&rt));
        assert_eq!(stats.min_size, 1);
        // Without the host route the granularity is the /8 itself.
        let rt2 = RoutingTable::from_entries([spal_rib::RouteEntry {
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: NextHop(1),
        }]);
        let stats2 = interval_stats(&interval_map(&rt2));
        assert_eq!(stats2.min_size, 1 << 24);
    }

    #[test]
    fn length_partitioning_psi_one() {
        let rt = synth::small(67);
        let parts = partition_by_length(&rt, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), rt.len());
    }
}
