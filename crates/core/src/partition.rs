//! ROT-partition construction and the home-LC detector (§3.1, §3.3).
//!
//! Given η chosen bit positions, every prefix lands in the partitions
//! whose bit pattern its tri-state bits match — a prefix with `*` in a
//! chosen position replicates into both halves (the paper's P3 = `01*`
//! appears in *every* partition when b2 and b4 are chosen). The 2^η bit
//! groups are then mapped onto ψ line cards — ψ "can be of any integer,
//! not necessarily a power of 2" — by greedy size balancing.
//!
//! A packet's home LC is computed by the LR1 detector from the same bit
//! positions of its destination address ("can be determined immediately
//! upon arrival by examining the appropriate bit positions").

use spal_rib::bits::{AddressBits, TriBit};
use spal_rib::{RouteEntry, RoutingTable};

/// The partitioning of one routing table over ψ line cards.
///
/// ```
/// use spal_core::bits::{select_bits, eta_for};
/// use spal_core::partition::Partitioning;
/// use spal_rib::synth;
///
/// let table = synth::small(7);
/// let psi = 6; // any integer, not only powers of two (§3.1)
/// let bits = select_bits(&table, eta_for(psi));
/// let part = Partitioning::new(&table, bits, psi);
///
/// // Every address has exactly one home LC, and looking it up in the
/// // home LC's fragment equals the full-table longest-prefix match.
/// let addr = table.entries()[42].prefix.first_addr();
/// let home = part.home_of(addr) as usize;
/// let fragments = part.forwarding_tables(&table);
/// assert_eq!(
///     fragments[home].longest_match(addr).map(|e| e.next_hop),
///     table.longest_match(addr).map(|e| e.next_hop),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Partitioning {
    /// Chosen bit positions, in selection order.
    bits: Vec<u8>,
    /// Mapping from bit group (0..2^η) to line card (0..ψ).
    group_to_lc: Vec<u16>,
    /// Number of line cards.
    psi: usize,
}

impl Partitioning {
    /// Partition `table` over `psi` LCs using the given bit positions
    /// (normally from [`crate::bits::select_bits`], with
    /// η = ⌈log₂ψ⌉ bits).
    ///
    /// # Panics
    /// Panics if `psi == 0`, if `2^bits.len() < psi` (not enough groups),
    /// or if bit positions repeat.
    pub fn new(table: &RoutingTable, bits: Vec<u8>, psi: usize) -> Self {
        assert!(psi >= 1, "a router needs at least one LC");
        let groups = 1usize << bits.len();
        assert!(
            groups >= psi,
            "2^{} groups cannot cover {psi} LCs",
            bits.len()
        );
        {
            let mut b = bits.clone();
            b.sort_unstable();
            b.dedup();
            assert_eq!(b.len(), bits.len(), "bit positions must be distinct");
        }
        // Group sizes determine the balanced group→LC mapping.
        let mut sizes = vec![0usize; groups];
        for e in table {
            for g in groups_of_prefix(&bits, e.prefix) {
                sizes[g] += 1;
            }
        }
        let group_to_lc = balance_groups(&sizes, psi);
        Partitioning {
            bits,
            group_to_lc,
            psi,
        }
    }

    /// The chosen bit positions.
    pub fn bits(&self) -> &[u8] {
        &self.bits
    }

    /// Number of line cards ψ.
    pub fn psi(&self) -> usize {
        self.psi
    }

    /// Number of bit groups (2^η).
    pub fn groups(&self) -> usize {
        self.group_to_lc.len()
    }

    /// The bit group of a destination address (the LR1 detector's XOR
    /// logic: extract the chosen bit positions, MSB-first).
    #[inline]
    pub fn group_of_addr(&self, addr: u32) -> usize {
        let mut g = 0usize;
        for &b in &self.bits {
            g = (g << 1) | addr.bit(b) as usize;
        }
        g
    }

    /// The home LC of a destination address.
    #[inline]
    pub fn home_of(&self, addr: u32) -> u16 {
        self.group_to_lc[self.group_of_addr(addr)]
    }

    /// The LC that homes a given bit group (for update propagation).
    #[inline]
    pub fn lc_of_group(&self, group: usize) -> u16 {
        self.group_to_lc[group]
    }

    /// The line cards whose ROT-partitions contain `prefix` (wildcards
    /// in the chosen bits replicate it), sorted and deduplicated — the
    /// update-propagation fan-out: a routing update to `prefix` must
    /// reach exactly these LCs' forwarding tables.
    pub fn lcs_of_prefix(&self, prefix: spal_rib::Prefix) -> Vec<u16> {
        let mut lcs: Vec<u16> = groups_of_prefix(&self.bits, prefix)
            .map(|g| self.group_to_lc[g])
            .collect();
        lcs.sort_unstable();
        lcs.dedup();
        lcs
    }

    /// Build the per-LC forwarding tables (the ROT-partitions merged per
    /// LC). Every address's longest match within its home LC's table
    /// equals its longest match in the full table — the replication of
    /// wildcard-bit prefixes guarantees it.
    pub fn forwarding_tables(&self, table: &RoutingTable) -> Vec<RoutingTable> {
        let mut per_lc: Vec<Vec<RouteEntry>> = vec![Vec::new(); self.psi];
        for e in table {
            let mut lcs: Vec<u16> = groups_of_prefix(&self.bits, e.prefix)
                .map(|g| self.group_to_lc[g])
                .collect();
            lcs.sort_unstable();
            lcs.dedup();
            for lc in lcs {
                per_lc[lc as usize].push(*e);
            }
        }
        per_lc.into_iter().map(RoutingTable::from_entries).collect()
    }

    /// Size statistics of the per-LC tables.
    pub fn stats(&self, table: &RoutingTable) -> PartitionStats {
        let tables = self.forwarding_tables(table);
        PartitionStats::of(table.len(), tables.iter().map(|t| t.len()))
    }

    /// Successor partitioning after line card `dead` fails: every bit
    /// group homed on `dead` is re-assigned greedily (biggest group
    /// first) to the least-loaded survivor, leaving every other group's
    /// home untouched — so a failover invalidates only the moved range.
    ///
    /// `dead_fragment` is the failed LC's forwarding-table fragment
    /// (the group sizes being moved are counted from it) and
    /// `survivor_loads[lc]` the current fragment size of each LC (the
    /// entry at `dead` is ignored). Deterministic for equal inputs.
    ///
    /// # Panics
    /// Panics if `psi < 2`, `dead` is out of range, or `survivor_loads`
    /// is not ψ long.
    pub fn remap_without(
        &self,
        dead: u16,
        dead_fragment: &RoutingTable,
        survivor_loads: &[usize],
    ) -> Partitioning {
        assert!(self.psi >= 2, "cannot remap the only LC away");
        assert!((dead as usize) < self.psi, "dead LC out of range");
        assert_eq!(survivor_loads.len(), self.psi, "one load per LC");
        let mut sizes = vec![0usize; self.groups()];
        for e in dead_fragment {
            for g in groups_of_prefix(&self.bits, e.prefix) {
                if self.group_to_lc[g] == dead {
                    sizes[g] += 1;
                }
            }
        }
        let mut moved: Vec<usize> = (0..self.groups())
            .filter(|&g| self.group_to_lc[g] == dead)
            .collect();
        moved.sort_by_key(|&g| std::cmp::Reverse(sizes[g]));
        let mut load = survivor_loads.to_vec();
        let mut group_to_lc = self.group_to_lc.clone();
        for g in moved {
            let lc = (0..self.psi)
                .filter(|&l| l != dead as usize)
                .min_by_key(|&l| (load[l], l))
                .expect("psi >= 2 leaves a survivor");
            group_to_lc[g] = lc as u16;
            load[lc] += sizes[g];
        }
        Partitioning {
            bits: self.bits.clone(),
            group_to_lc,
            psi: self.psi,
        }
    }
}

/// Greedy group→LC balancing: biggest group to the least-loaded LC, ties
/// broken toward LCs holding fewer groups so every LC homes at least one
/// group (even empty ones on degenerate tables). For ψ a power of two
/// this degenerates to one group per LC. Shared by the IPv4 and IPv6
/// partitioners.
pub(crate) fn balance_groups(sizes: &[usize], psi: usize) -> Vec<u16> {
    assert!(psi >= 1, "a router needs at least one LC");
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(sizes[g]));
    let mut load = vec![0usize; psi];
    let mut count = vec![0usize; psi];
    let mut group_to_lc = vec![0u16; sizes.len()];
    for g in order {
        let lc = (0..psi)
            .min_by_key(|&l| (load[l], count[l], l))
            .expect("psi >= 1");
        group_to_lc[g] = lc as u16;
        load[lc] += sizes[g];
        count[lc] += 1;
    }
    group_to_lc
}

/// Iterator over the bit groups a prefix belongs to: the cross product of
/// its wildcard positions. Generic over the address family (the IPv6
/// partitioner in [`crate::v6`] reuses it).
pub(crate) fn groups_of_prefix<'a, P: spal_rib::bits::IpPrefix>(
    bits: &'a [u8],
    prefix: P,
) -> impl Iterator<Item = usize> + 'a {
    // Precompute the fixed part and the wildcard positions (MSB-first in
    // group index order).
    let eta = bits.len();
    let mut fixed = 0usize;
    let mut wild_positions: Vec<usize> = Vec::new();
    for (i, &b) in bits.iter().enumerate() {
        let shift = eta - 1 - i;
        match prefix.tri_bit(b) {
            TriBit::Zero => {}
            TriBit::One => fixed |= 1 << shift,
            TriBit::Wild => wild_positions.push(shift),
        }
    }
    let count = 1usize << wild_positions.len();
    (0..count).map(move |mask| {
        let mut g = fixed;
        for (j, &shift) in wild_positions.iter().enumerate() {
            if (mask >> j) & 1 == 1 {
                g |= 1 << shift;
            }
        }
        g
    })
}

/// Partition-quality summary (Criterion 1 ↔ `total_with_replication`,
/// Criterion 2 ↔ `max_size − min_size`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionStats {
    /// Prefixes in the original table.
    pub original: usize,
    /// Number of partitions.
    pub parts: usize,
    /// Smallest per-LC table.
    pub min_size: usize,
    /// Largest per-LC table.
    pub max_size: usize,
    /// Σ per-LC sizes (≥ original because of wildcard replication).
    pub total_with_replication: usize,
}

impl PartitionStats {
    /// Summarise a set of partition sizes.
    pub fn of(original: usize, sizes: impl Iterator<Item = usize>) -> Self {
        let sizes: Vec<usize> = sizes.collect();
        PartitionStats {
            original,
            parts: sizes.len(),
            min_size: sizes.iter().copied().min().unwrap_or(0),
            max_size: sizes.iter().copied().max().unwrap_or(0),
            total_with_replication: sizes.iter().sum(),
        }
    }

    /// Replication overhead: total/original − 1.
    pub fn replication_overhead(&self) -> f64 {
        if self.original == 0 {
            return 0.0;
        }
        self.total_with_replication as f64 / self.original as f64 - 1.0
    }

    /// Max/min size ratio (∞ when the smallest partition is empty).
    pub fn imbalance_ratio(&self) -> f64 {
        if self.min_size == 0 {
            return f64::INFINITY;
        }
        self.max_size as f64 / self.min_size as f64
    }
}

/// Helper: build the raw 2^η ROT-partitions (before LC mapping), for
/// partition-quality studies.
pub fn rot_partitions(table: &RoutingTable, bits: &[u8]) -> Vec<RoutingTable> {
    let groups = 1usize << bits.len();
    let mut parts: Vec<Vec<RouteEntry>> = vec![Vec::new(); groups];
    for e in table {
        for g in groups_of_prefix(bits, e.prefix) {
            parts[g].push(*e);
        }
    }
    parts.into_iter().map(RoutingTable::from_entries).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::{synth, NextHop, Prefix};

    fn paper_example() -> RoutingTable {
        let mk = |bits: u32, len: u8, nh: u16| RouteEntry {
            prefix: Prefix::new(bits << 24, len).unwrap(),
            next_hop: NextHop(nh),
        };
        RoutingTable::from_entries([
            mk(0b1010_0000, 3, 1), // P1 = 101*
            mk(0b1011_0000, 4, 2), // P2 = 1011*
            mk(0b0100_0000, 2, 3), // P3 = 01*
            mk(0b0011_1000, 6, 4), // P4 = 001110*
            mk(0b1001_0011, 8, 5), // P5 = 10010011
            mk(0b1001_1000, 5, 6), // P6 = 10011*
            mk(0b0110_0100, 6, 7), // P7 = 011001*
        ])
    }

    #[test]
    fn paper_example_b2_b4_partitions() {
        // §3.1: bits b2,b4 give {P3,P5}, {P3,P6}, {P1,P2,P3,P7},
        // {P1,P2,P3,P4}.
        let rt = paper_example();
        let parts = rot_partitions(&rt, &[2, 4]);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![2, 2, 4, 4]);
        // P3 (next hop 3) is in every partition.
        for p in &parts {
            assert!(p.entries().iter().any(|e| e.next_hop == NextHop(3)));
        }
    }

    #[test]
    fn paper_example_b0_b4_partitions() {
        // §3.1: bits b0,b4 give {P3,P7}, {P3,P4}, {P1,P2,P5}, {P1,P2,P6}
        // — each partition has 2 or 3 prefixes.
        let rt = paper_example();
        let parts = rot_partitions(&rt, &[0, 4]);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, vec![2, 2, 3, 3]);
    }

    #[test]
    fn home_lookup_equals_full_table_lookup() {
        // The core correctness property of SPAL: for every address, the
        // home LC's partition contains the address's longest match.
        let rt = synth::small(11);
        let bits = crate::bits::select_bits(&rt, 2);
        let part = Partitioning::new(&rt, bits, 4);
        let tables = part.forwarding_tables(&rt);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let addr: u32 = rng.gen();
            let home = part.home_of(addr) as usize;
            assert_eq!(
                tables[home]
                    .longest_match(addr)
                    .map(|e| (e.prefix, e.next_hop)),
                rt.longest_match(addr).map(|e| (e.prefix, e.next_hop)),
                "addr {addr:#010x}"
            );
        }
    }

    #[test]
    fn non_power_of_two_psi() {
        let rt = synth::small(13);
        for psi in [3usize, 5, 6, 7] {
            let eta = crate::bits::eta_for(psi);
            let bits = crate::bits::select_bits(&rt, eta);
            let part = Partitioning::new(&rt, bits, psi);
            assert_eq!(part.psi(), psi);
            let tables = part.forwarding_tables(&rt);
            assert_eq!(tables.len(), psi);
            // Every LC got something and homes are in range.
            for t in &tables {
                assert!(!t.is_empty());
            }
            for addr in [0u32, 0x0A000000, 0xC0A80001, u32::MAX] {
                assert!((part.home_of(addr) as usize) < psi);
            }
            // Correctness holds for arbitrary psi too.
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(psi as u64);
            for _ in 0..100 {
                let addr: u32 = rng.gen();
                let home = part.home_of(addr) as usize;
                assert_eq!(
                    tables[home].longest_match(addr).map(|e| e.next_hop),
                    rt.longest_match(addr).map(|e| e.next_hop)
                );
            }
        }
    }

    #[test]
    fn lcs_of_prefix_matches_partition_membership() {
        let rt = synth::small(23);
        let bits = crate::bits::select_bits(&rt, 3);
        let part = Partitioning::new(&rt, bits, 5);
        let tables = part.forwarding_tables(&rt);
        for e in rt.entries().iter().step_by(7) {
            let lcs = part.lcs_of_prefix(e.prefix);
            assert!(!lcs.is_empty());
            for (lc, t) in tables.iter().enumerate() {
                let member = t.entries().iter().any(|x| x.prefix == e.prefix);
                assert_eq!(
                    member,
                    lcs.contains(&(lc as u16)),
                    "prefix {} vs LC {lc}",
                    e.prefix
                );
            }
        }
    }

    #[test]
    fn psi_one_keeps_everything_local() {
        let rt = synth::small(17);
        let part = Partitioning::new(&rt, vec![], 1);
        assert_eq!(part.home_of(123456), 0);
        let tables = part.forwarding_tables(&rt);
        assert_eq!(tables[0].len(), rt.len());
    }

    #[test]
    fn partition_shrinks_per_lc_tables() {
        // The headline §4 effect: per-LC tables are a fraction of the
        // whole table, shrinking as ψ grows.
        let rt = synth::synthesize(&synth::SynthConfig::sized(20_000, 19));
        let bits4 = crate::bits::select_bits(&rt, 2);
        let s4 = Partitioning::new(&rt, bits4, 4).stats(&rt);
        let bits16 = crate::bits::select_bits(&rt, 4);
        let s16 = Partitioning::new(&rt, bits16, 16).stats(&rt);
        assert!(s4.max_size < rt.len() / 2, "psi=4 max {}", s4.max_size);
        assert!(
            s16.max_size < s4.max_size,
            "psi=16 {} vs psi=4 {}",
            s16.max_size,
            s4.max_size
        );
        assert!(s16.max_size < rt.len() / 8, "psi=16 max {}", s16.max_size);
        // Replication stays modest with well-chosen bits.
        assert!(
            s16.replication_overhead() < 0.6,
            "overhead {}",
            s16.replication_overhead()
        );
    }

    #[test]
    fn stats_math() {
        let s = PartitionStats::of(100, [30usize, 25, 28, 27].into_iter());
        assert_eq!(s.parts, 4);
        assert_eq!(s.min_size, 25);
        assert_eq!(s.max_size, 30);
        assert_eq!(s.total_with_replication, 110);
        assert!((s.replication_overhead() - 0.1).abs() < 1e-12);
        assert!((s.imbalance_ratio() - 1.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn too_few_groups_rejected() {
        let rt = synth::small(1);
        let _ = Partitioning::new(&rt, vec![0], 4); // 2 groups < 4 LCs
    }

    #[test]
    #[should_panic]
    fn duplicate_bits_rejected() {
        let rt = synth::small(1);
        let _ = Partitioning::new(&rt, vec![3, 3], 4);
    }

    #[test]
    fn remap_moves_only_dead_groups_and_stays_correct() {
        let rt = synth::small(11);
        let bits = crate::bits::select_bits(&rt, 3);
        let part = Partitioning::new(&rt, bits, 4);
        let tables = part.forwarding_tables(&rt);
        let loads: Vec<usize> = tables.iter().map(|t| t.len()).collect();
        let dead = 1u16;
        let next = part.remap_without(dead, &tables[dead as usize], &loads);
        // Groups not homed on the dead LC keep their home; the dead
        // LC's groups all land on survivors.
        for g in 0..part.groups() {
            if part.lc_of_group(g) == dead {
                assert_ne!(next.lc_of_group(g), dead, "group {g} still on dead LC");
            } else {
                assert_eq!(next.lc_of_group(g), part.lc_of_group(g));
            }
        }
        // No address is ever homed on the dead LC again, and the home
        // lookup stays equal to the full-table LPM.
        let next_tables = next.forwarding_tables(&rt);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..500 {
            let addr: u32 = rng.gen();
            let home = next.home_of(addr);
            assert_ne!(home, dead);
            assert_eq!(
                next_tables[home as usize]
                    .longest_match(addr)
                    .map(|e| e.next_hop),
                rt.longest_match(addr).map(|e| e.next_hop),
                "addr {addr:#010x}"
            );
        }
        // Deterministic: same inputs, same mapping.
        let again = part.remap_without(dead, &tables[dead as usize], &loads);
        for g in 0..part.groups() {
            assert_eq!(next.lc_of_group(g), again.lc_of_group(g));
        }
    }

    #[test]
    #[should_panic]
    fn remap_rejects_single_lc() {
        let rt = synth::small(3);
        let part = Partitioning::new(&rt, vec![], 1);
        let _ = part.remap_without(0, &rt, &[rt.len()]);
    }

    #[test]
    fn group_of_addr_msb_first() {
        let rt = paper_example();
        let part = Partitioning::new(&rt, vec![0, 4], 4);
        // addr with b0=1, b4=0 → group 0b10 = 2.
        let addr = 0b1000_0000u32 << 24;
        assert_eq!(part.group_of_addr(addr), 2);
        // addr with b0=0, b4=1 → group 0b01 = 1.
        let addr = 0b0000_1000u32 << 24;
        assert_eq!(part.group_of_addr(addr), 1);
    }
}
