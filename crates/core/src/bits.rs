//! Partitioning-bit selection — §3.1 of the paper.
//!
//! For a router with ψ LCs, η = ⌈log₂ψ⌉ bit positions fragment the
//! routing table into 2^η ROT-partitions. A candidate bit bν splits a
//! prefix set into (Φ0 + Φ*) and (Φ1 + Φ*) prefixes, where Φ0/Φ1 count
//! prefixes whose bit ν is a concrete 0/1 and Φ* counts those whose bit ν
//! lies beyond their length (these replicate into both subsets):
//!
//! * **Criterion 1** — minimise the combined subset size, i.e. minimise
//!   Φ* (the replication). This automatically rules out large ν: most
//!   prefixes are shorter than 24 bits, so bits past ~24 are `*` almost
//!   everywhere.
//! * **Criterion 2** — minimise the size difference |Φ0 − Φ1|, counting
//!   only prefixes with a concrete bit ν.
//!
//! Bits are chosen one at a time, each evaluated against *all current
//! subsets simultaneously* (the paper applies the criteria "recursively
//! … before deciding the bit for both subsets as the second control
//! bit"): candidate scores are the sums of Φ* and |Φ0 − Φ1| across
//! subsets.

use spal_rib::bits::{AddressBits, IpPrefix, TriBit};
use spal_rib::RoutingTable;

/// How the two criteria combine into one ordering.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BitSelectionStrategy {
    /// Minimise the largest resulting subset first, then the total size,
    /// then the imbalance. This is the reading that reproduces the
    /// paper's own §3.1 example (it selects {b0, b4}, the partitioning
    /// the paper calls superior): Criterion 1 asks for "*each*
    /// ROT-partition involving as few prefixes as possible", and
    /// Criterion 2 breaks the remaining ties by balance. **Default.**
    #[default]
    MinimizeMax,
    /// Σ Φ* strictly first (the literal transcription of the paper's
    /// Criterion-1 derivation), Σ |Φ0 − Φ1| as tie-break. On the paper's
    /// own example this picks a zero-replication but lopsided bit, so it
    /// is kept as an ablation.
    Lexicographic,
    /// Weighted sum `Φ* + lambda · |Φ0 − Φ1|` — an ablation knob that
    /// trades replication against balance.
    Weighted { lambda: f64 },
}

/// Score of one candidate bit over the current subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitScore {
    /// The bit position ν (0 = most significant).
    pub bit: u8,
    /// Σ Φ* over subsets: prefixes that would be replicated.
    pub phi_star: usize,
    /// Σ |Φ0 − Φ1| over subsets: size imbalance.
    pub imbalance: usize,
    /// Size of the largest subset after splitting on this bit.
    pub max_size: usize,
    /// Σ subset sizes after splitting (original + Φ* replication).
    pub total_size: usize,
}

impl BitScore {
    fn better_than(&self, other: &BitScore, strategy: BitSelectionStrategy) -> bool {
        match strategy {
            BitSelectionStrategy::MinimizeMax => {
                // Criterion 1 (each partition as small as possible) =
                // smallest max, then Criterion 2 (minimum size
                // difference) = smallest imbalance, then least total
                // replication.
                (self.max_size, self.imbalance, self.total_size, self.bit)
                    < (other.max_size, other.imbalance, other.total_size, other.bit)
            }
            BitSelectionStrategy::Lexicographic => {
                (self.phi_star, self.imbalance, self.bit)
                    < (other.phi_star, other.imbalance, other.bit)
            }
            BitSelectionStrategy::Weighted { lambda } => {
                let a = self.phi_star as f64 + lambda * self.imbalance as f64;
                let b = other.phi_star as f64 + lambda * other.imbalance as f64;
                (a, self.bit) < (b, other.bit)
            }
        }
    }
}

/// Score candidate bit `nu` over the given subsets.
fn score_bit<P: IpPrefix>(subsets: &[Vec<P>], nu: u8) -> BitScore {
    let mut phi_star = 0usize;
    let mut imbalance = 0usize;
    let mut max_size = 0usize;
    let mut total_size = 0usize;
    for subset in subsets {
        let mut zeros = 0usize;
        let mut ones = 0usize;
        let mut wild = 0usize;
        for p in subset {
            match p.tri_bit(nu) {
                TriBit::Zero => zeros += 1,
                TriBit::One => ones += 1,
                TriBit::Wild => wild += 1,
            }
        }
        phi_star += wild;
        imbalance += zeros.abs_diff(ones);
        max_size = max_size.max(zeros + wild).max(ones + wild);
        total_size += zeros + ones + 2 * wild;
    }
    BitScore {
        bit: nu,
        phi_star,
        imbalance,
        max_size,
        total_size,
    }
}

/// Split every subset on bit `nu`; wildcards go to both halves.
fn split_subsets<P: IpPrefix>(subsets: Vec<Vec<P>>, nu: u8) -> Vec<Vec<P>> {
    let mut out = Vec::with_capacity(subsets.len() * 2);
    for subset in subsets {
        let mut zero = Vec::new();
        let mut one = Vec::new();
        for p in subset {
            match p.tri_bit(nu) {
                TriBit::Zero => zero.push(p),
                TriBit::One => one.push(p),
                TriBit::Wild => {
                    zero.push(p);
                    one.push(p);
                }
            }
        }
        out.push(zero);
        out.push(one);
    }
    out
}

/// Select `eta` partitioning bit positions for an arbitrary prefix set
/// (IPv4 or IPv6) under `strategy`, considering candidate positions
/// `0..=max_bit`. Returns the chosen positions in selection order.
///
/// # Panics
/// Panics if `eta > max_bit + 1` (not enough distinct positions) or if
/// `max_bit` exceeds the address width.
pub fn select_bits_generic<P: IpPrefix>(
    prefixes: &[P],
    eta: usize,
    max_bit: u8,
    strategy: BitSelectionStrategy,
) -> Vec<u8> {
    assert!(
        max_bit < P::Addr::BITS,
        "bit positions for this family are 0..={}",
        P::Addr::BITS - 1
    );
    assert!(
        eta <= max_bit as usize + 1,
        "cannot choose {eta} distinct bits from {} positions",
        max_bit as usize + 1
    );
    let mut chosen: Vec<u8> = Vec::with_capacity(eta);
    let mut subsets: Vec<Vec<P>> = vec![prefixes.to_vec()];
    for _ in 0..eta {
        let best = (0..=max_bit)
            .filter(|nu| !chosen.contains(nu))
            .map(|nu| score_bit(&subsets, nu))
            .reduce(|best, s| {
                if s.better_than(&best, strategy) {
                    s
                } else {
                    best
                }
            })
            .expect("at least one candidate bit remains");
        subsets = split_subsets(subsets, best.bit);
        chosen.push(best.bit);
    }
    chosen
}

/// [`select_bits_generic`] for an IPv4 routing table, candidate
/// positions `0..=max_bit` (the paper examines 0 ≤ ν ≤ 31; Criterion 1
/// already rules out large ν on real tables).
pub fn select_bits_with(
    table: &RoutingTable,
    eta: usize,
    max_bit: u8,
    strategy: BitSelectionStrategy,
) -> Vec<u8> {
    assert!(max_bit <= 31, "IPv4 bit positions are 0..=31");
    let prefixes: Vec<spal_rib::Prefix> = table.prefixes().collect();
    select_bits_generic(&prefixes, eta, max_bit, strategy)
}

/// [`select_bits_with`] using the default strategy and the full 0..=31
/// candidate range.
pub fn select_bits(table: &RoutingTable, eta: usize) -> Vec<u8> {
    select_bits_with(table, eta, 31, BitSelectionStrategy::default())
}

/// Number of partitioning bits for a router with `psi` LCs:
/// η = ⌈log₂ψ⌉.
pub fn eta_for(psi: usize) -> usize {
    assert!(psi >= 1, "a router needs at least one LC");
    (psi as f64).log2().ceil() as usize
}

/// Diagnostic: the full score table for every candidate position, in bit
/// order — what Fig.-style partitioning studies print.
pub fn score_table(table: &RoutingTable, max_bit: u8) -> Vec<BitScore> {
    let subsets = vec![table.prefixes().collect::<Vec<_>>()];
    (0..=max_bit).map(|nu| score_bit(&subsets, nu)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::{synth, NextHop, Prefix, RouteEntry};

    /// The paper's §3.1 worked example: 7 prefixes over 8-bit addresses.
    /// P1=101*, P2=1011*, P3=01*, P4=001110*, P5=10010011, P6=10011*,
    /// P7=011001*. We embed the 8-bit toy prefixes in the top byte.
    fn paper_example() -> RoutingTable {
        let mk = |bits: u32, len: u8, nh: u16| RouteEntry {
            prefix: Prefix::new(bits << 24, len).unwrap(),
            next_hop: NextHop(nh),
        };
        RoutingTable::from_entries([
            mk(0b1010_0000, 3, 1), // P1 = 101*
            mk(0b1011_0000, 4, 2), // P2 = 1011*
            mk(0b0100_0000, 2, 3), // P3 = 01*
            mk(0b0011_1000, 6, 4), // P4 = 001110*
            mk(0b1001_0011, 8, 5), // P5 = 10010011
            mk(0b1001_1000, 5, 6), // P6 = 10011*
            mk(0b0110_0100, 6, 7), // P7 = 011001*
        ])
    }

    #[test]
    fn paper_example_scores() {
        let rt = paper_example();
        let scores = score_table(&rt, 7);
        // b0: every prefix has a concrete bit 0 → Φ* = 0.
        assert_eq!(scores[0].phi_star, 0);
        // 4 prefixes start with 1 (P1,P2,P5,P6), 3 with 0 → imbalance 1.
        assert_eq!(scores[0].imbalance, 1);
        // b2 (the paper's "inferior" example bit): P3=01* has len 2, so
        // bit 2 is wild → Φ* = 1.
        assert_eq!(scores[2].phi_star, 1);
        // b4: concrete for P2(4? no: len 4 → bits 0..3, bit 4 wild).
        // Wild for P1(len 3), P2(len 4), P3(len 2) → Φ* = 3.
        assert_eq!(scores[4].phi_star, 3);
    }

    #[test]
    fn paper_example_prefers_b0_over_b2() {
        // §3.1: partitioning on {b0, b4} beats {b2, b4}; both strategies
        // pick b0 first — b2 can never be first.
        let rt = paper_example();
        for strategy in [
            BitSelectionStrategy::MinimizeMax,
            BitSelectionStrategy::Lexicographic,
        ] {
            let bits = select_bits_with(&rt, 1, 7, strategy);
            assert_eq!(bits[0], 0, "{strategy:?}");
        }
    }

    #[test]
    fn paper_example_reproduces_b0_b4() {
        // The default strategy must reproduce the paper's published
        // choice {b0, b4} and its partition sizes {2, 2, 3, 3}.
        let rt = paper_example();
        let bits = select_bits_with(&rt, 2, 7, BitSelectionStrategy::MinimizeMax);
        assert_eq!(bits, vec![0, 4]);
        let parts = crate::partition::rot_partitions(&rt, &bits);
        let mut sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2, 3, 3]);
    }

    #[test]
    fn eta_rounding() {
        assert_eq!(eta_for(1), 0);
        assert_eq!(eta_for(2), 1);
        assert_eq!(eta_for(3), 2);
        assert_eq!(eta_for(4), 2);
        assert_eq!(eta_for(5), 3);
        assert_eq!(eta_for(16), 4);
        assert_eq!(eta_for(17), 5);
    }

    #[test]
    fn criterion1_rules_out_high_bits() {
        // On a backbone-like table, bits past ~24 are wild for most
        // prefixes, so no chosen bit should sit there.
        let rt = synth::small(3);
        let bits = select_bits(&rt, 4);
        assert_eq!(bits.len(), 4);
        for &b in &bits {
            assert!(b < 24, "chose high bit {b}");
        }
        // All distinct.
        let mut sorted = bits.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn lexicographic_minimises_phi_star_first() {
        let rt = synth::small(5);
        let bits = select_bits_with(&rt, 1, 31, BitSelectionStrategy::Lexicographic);
        let scores = score_table(&rt, 31);
        let min_phi = scores.iter().map(|s| s.phi_star).min().unwrap();
        assert_eq!(scores[bits[0] as usize].phi_star, min_phi);
    }

    #[test]
    fn minimize_max_minimises_largest_partition() {
        let rt = synth::small(5);
        let bits = select_bits(&rt, 1);
        let scores = score_table(&rt, 31);
        let min_max = scores.iter().map(|s| s.max_size).min().unwrap();
        assert_eq!(scores[bits[0] as usize].max_size, min_max);
    }

    #[test]
    fn weighted_strategy_changes_tradeoff() {
        let rt = synth::small(7);
        // With a huge lambda, balance dominates; the pick must have
        // near-minimal imbalance even at the cost of Φ*.
        let bits = select_bits_with(&rt, 1, 31, BitSelectionStrategy::Weighted { lambda: 1e6 });
        let scores = score_table(&rt, 31);
        let min_imb = scores.iter().map(|s| s.imbalance).min().unwrap();
        assert_eq!(scores[bits[0] as usize].imbalance, min_imb);
    }

    #[test]
    fn zero_eta_for_single_lc() {
        let rt = synth::small(9);
        assert!(select_bits(&rt, 0).is_empty());
    }

    #[test]
    fn empty_table() {
        let rt = RoutingTable::new();
        let bits = select_bits(&rt, 2);
        assert_eq!(bits.len(), 2);
    }
}
