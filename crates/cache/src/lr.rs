//! The set-associative LR-cache itself: probe / reserve / fill / flush,
//! with the M-bit mix rule and W-bit waiting entries of §3.2.

use crate::addr::CacheAddr;
use crate::policy::ReplacementPolicy;
use crate::stats::CacheStats;
use crate::victim::{VictimBlock, VictimCache};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Where a cached result came from — the M ("mix") status bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Result produced by the local FE (this LC is the address's home).
    Loc,
    /// Result obtained from a remote FE over the fabric.
    Rem,
}

/// How the mix rule participates in replacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MixMode {
    /// §3.2 behaviour: the over-represented class supplies the eviction
    /// candidates.
    #[default]
    Enforce,
    /// Ablation: ignore the M bit; replacement is plain LRU/FIFO/random
    /// over the whole set.
    Ignore,
}

/// How an address maps to a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexScheme {
    /// Low `log2(sets)` address bits (hardware-faithful default).
    #[default]
    LowBits,
    /// XOR of the high and low halves before masking (ablation; robust
    /// against pathological strides).
    XorFold,
}

/// When [`LrCache::probe_batch`] issues its distance-8 set prefetch.
///
/// Prefetching pays only when the sets being scanned are not already
/// hardware-cache-resident: under locality traffic against the paper's
/// β = 4K (a ~130 KiB way array that lives comfortably in L2) the hot
/// sets are already cached and the prefetch instructions are pure
/// issue-port overhead — measured as a ~5% vector-mode throughput loss
/// on the locality workload. `Auto` combines a build-time *array-size*
/// gate (small arrays never prefetch) with a runtime *working-set*
/// probe: every [`PrefetchMode::AUTO_WINDOW_PROBES`] probes it looks at
/// the windowed hit rate — a high rate means the traffic's working set
/// (and therefore the hot sets) fits in the hardware caches even though
/// the full array would not, so prefetch turns off; a low rate means
/// the scan is striding cold sets, so it turns back on. The explicit
/// modes exist for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchMode {
    /// Prefetch only while the way array exceeds
    /// [`PrefetchMode::AUTO_RESIDENT_BYTES`] *and* the observed
    /// working set does not look cache-resident.
    #[default]
    Auto,
    /// Always prefetch (the pre-knob behaviour).
    Always,
    /// Never prefetch.
    Never,
}

impl PrefetchMode {
    /// `Auto` cut-off: way arrays at or below this many bytes are
    /// assumed cache-resident (half a conservative 1 MiB per-core L2,
    /// leaving room for the trie's hot lines).
    pub const AUTO_RESIDENT_BYTES: usize = 512 * 1024;

    /// `Auto` re-evaluates its prefetch decision once per this many
    /// probes (checked at batch granularity, so the per-lane hot path
    /// pays nothing).
    pub const AUTO_WINDOW_PROBES: u64 = 32_768;

    /// Windowed hit rate at or above which `Auto` treats the working
    /// set as hardware-cache-resident and stops prefetching.
    pub const AUTO_RESIDENT_HIT_RATE: f64 = 0.9;
}

/// Configuration of one LR-cache.
#[derive(Debug, Clone)]
pub struct LrCacheConfig {
    /// Total blocks β (paper: 1K–8K). Must be a multiple of `assoc`, and
    /// `blocks / assoc` must be a power of two.
    pub blocks: usize,
    /// Set associativity (paper: 4).
    pub assoc: usize,
    /// Mix value γ: the fraction of each set reserved for REM results
    /// (paper sweeps 0 %, 25 %, 50 %, 75 %; 50 % is best for β ≥ 2K).
    pub mix_rem_fraction: f64,
    /// Whether the mix rule is enforced.
    pub mix_mode: MixMode,
    /// Conventional policy among candidates.
    pub policy: ReplacementPolicy,
    /// Victim-cache capacity in blocks (paper: 8; 0 disables).
    pub victim_blocks: usize,
    /// Set-index scheme.
    pub index_scheme: IndexScheme,
    /// Seed for the (only) source of randomness, the `Random` policy.
    pub seed: u64,
    /// Batched-probe prefetch policy (see [`PrefetchMode`]).
    pub prefetch: PrefetchMode,
}

impl Default for LrCacheConfig {
    fn default() -> Self {
        LrCacheConfig {
            blocks: 4096,
            assoc: 4,
            mix_rem_fraction: 0.5,
            mix_mode: MixMode::Enforce,
            policy: ReplacementPolicy::Lru,
            victim_blocks: 8,
            index_scheme: IndexScheme::LowBits,
            seed: 0x5EED,
            prefetch: PrefetchMode::Auto,
        }
    }
}

impl LrCacheConfig {
    /// Convenience: the paper's configuration for a given β, applying the
    /// §5.2 rule that γ drops to 25 % when β = 1K.
    pub fn paper(blocks: usize) -> Self {
        LrCacheConfig {
            blocks,
            mix_rem_fraction: if blocks <= 1024 { 0.25 } else { 0.5 },
            ..Default::default()
        }
    }
}

/// Outcome of probing the cache with a packet's destination address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeResult<V> {
    /// Complete entry found; the packet is satisfied immediately.
    Hit { value: V, origin: Origin },
    /// A reserved entry exists but its reply has not arrived; the packet
    /// must join the entry's waiting list.
    HitWaiting,
    /// No entry for this address.
    Miss,
}

/// Outcome of one lane of [`LrCache::probe_batch`]: a probe with the
/// miss-path reservation folded in, so a vector-mode caller gets the
/// complete cache verdict for every packet in one pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchProbe<V> {
    /// Complete entry found; the packet is satisfied immediately.
    Hit { value: V, origin: Origin },
    /// A reserved entry exists but its reply has not arrived; the packet
    /// joins the entry's waiting list.
    Waiting,
    /// Miss, and a W-bit block now records the address: the caller owns
    /// issuing the lookup (and any followers will see [`Self::Waiting`]).
    MissReserved,
    /// Miss, but the set was entirely waiting so nothing was recorded:
    /// the packet proceeds uncached.
    MissUnrecorded,
}

/// Outcome of reserving a block on a miss (early recording).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveOutcome {
    /// A block now carries the address with its W bit set.
    Reserved,
    /// Every block in the set is itself waiting; nothing was evictable,
    /// so the packet proceeds unrecorded.
    SetFullOfWaiting,
}

/// Outcome of delivering a lookup result to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillOutcome {
    /// The reply completed a waiting entry.
    CompletedWaiting,
    /// No waiting entry existed (reservation had failed or the entry was
    /// flushed); the result was inserted as a fresh complete entry when
    /// possible.
    Inserted,
    /// No waiting entry and no insertable slot (set full of waiters).
    Dropped,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block<V, A: CacheAddr> {
    Invalid,
    /// W bit set: address recorded, reply pending.
    Waiting {
        addr: A,
    },
    /// Availability = shared: a complete result.
    Complete {
        addr: A,
        value: V,
        origin: Origin,
    },
}

#[derive(Debug, Clone, Copy)]
struct Way<V, A: CacheAddr> {
    block: Block<V, A>,
    lru: u64,
    fifo: u64,
}

/// One line card's LR-cache.
///
/// ```
/// use spal_cache::{LrCache, LrCacheConfig, Origin, ProbeResult, ReserveOutcome, FillOutcome};
///
/// let mut cache: LrCache<u16> = LrCache::new(LrCacheConfig::paper(4096));
/// // A miss reserves a W-bit entry (early recording, §3.2)…
/// assert_eq!(cache.probe(0x0A010203), ProbeResult::Miss);
/// assert_eq!(cache.reserve(0x0A010203), ReserveOutcome::Reserved);
/// // …followers wait instead of re-issuing the lookup…
/// assert_eq!(cache.probe(0x0A010203), ProbeResult::HitWaiting);
/// // …and the reply completes the entry for everyone.
/// assert_eq!(cache.fill(0x0A010203, 7, Origin::Rem), FillOutcome::CompletedWaiting);
/// assert!(matches!(cache.probe(0x0A010203), ProbeResult::Hit { value: 7, .. }));
/// ```
#[derive(Debug)]
pub struct LrCache<V, A: CacheAddr = u32> {
    config: LrCacheConfig,
    sets: usize,
    ways: Vec<Way<V, A>>, // sets × assoc, row-major
    victim: VictimCache<V, A>,
    stats: CacheStats,
    clock: u64,
    rng: SmallRng,
    /// ⌈γ · assoc⌉ blocks per set for REM, precomputed.
    rem_quota: usize,
    /// Whether [`LrCache::probe_batch`] prefetches right now; seeded
    /// from [`LrCacheConfig::prefetch`] at build time and — in `Auto`
    /// mode — retuned from the windowed hit rate.
    prefetch_sets: bool,
    /// `Auto` mode: adapt `prefetch_sets` at runtime.
    auto_adapt: bool,
    /// `Auto` mode's build-time gate: the way array is large enough
    /// that prefetching can ever pay.
    auto_size_gate: bool,
    /// Probe count at the last `Auto` re-evaluation.
    auto_last_probes: u64,
    /// Hit count at the last `Auto` re-evaluation.
    auto_last_hits: u64,
}

impl<V: Copy + Eq + std::fmt::Debug, A: CacheAddr> LrCache<V, A> {
    /// Build a cache from a configuration.
    ///
    /// # Panics
    /// Panics if `blocks` is not a positive multiple of `assoc` or the
    /// set count is not a power of two.
    pub fn new(config: LrCacheConfig) -> Self {
        assert!(config.assoc > 0, "associativity must be positive");
        assert!(
            config.blocks > 0 && config.blocks.is_multiple_of(config.assoc),
            "blocks must be a positive multiple of assoc"
        );
        let sets = config.blocks / config.assoc;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            (0.0..=1.0).contains(&config.mix_rem_fraction),
            "mix fraction must be in [0, 1]"
        );
        let rem_quota = (config.mix_rem_fraction * config.assoc as f64).round() as usize;
        let ways = vec![
            Way {
                block: Block::Invalid,
                lru: 0,
                fifo: 0
            };
            config.blocks
        ];
        let victim = VictimCache::new(config.victim_blocks, config.policy);
        let rng = SmallRng::seed_from_u64(config.seed);
        let size_gate =
            std::mem::size_of::<Way<V, A>>() * config.blocks > PrefetchMode::AUTO_RESIDENT_BYTES;
        let prefetch_sets = match config.prefetch {
            PrefetchMode::Always => true,
            PrefetchMode::Never => false,
            PrefetchMode::Auto => size_gate,
        };
        let auto_adapt = config.prefetch == PrefetchMode::Auto;
        LrCache {
            sets,
            ways,
            victim,
            stats: CacheStats::default(),
            clock: 0,
            rng,
            rem_quota,
            prefetch_sets,
            auto_adapt,
            auto_size_gate: size_gate,
            auto_last_probes: 0,
            auto_last_hits: 0,
            config,
        }
    }

    /// Whether [`LrCache::probe_batch`] would issue set prefetches right
    /// now (the `Auto` decision is observable for tests and profiling).
    pub fn prefetch_active(&self) -> bool {
        self.prefetch_sets
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &LrCacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Reset statistics (the cache contents are untouched).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    #[inline]
    fn set_of(&self, addr: A) -> usize {
        let mask = self.sets - 1;
        match self.config.index_scheme {
            IndexScheme::LowBits => addr.low_bits() & mask,
            IndexScheme::XorFold => addr.xor_fold() & mask,
        }
    }

    #[inline]
    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        let start = set * self.config.assoc;
        start..start + self.config.assoc
    }

    /// Probe for `addr` (one cache port operation). Updates recency and
    /// statistics; promotes victim-cache hits back into the main array.
    pub fn probe(&mut self, addr: A) -> ProbeResult<V> {
        self.clock += 1;
        let range = self.set_range(self.set_of(addr));
        for i in range.clone() {
            match self.ways[i].block {
                Block::Complete {
                    addr: a,
                    value,
                    origin,
                } if a == addr => {
                    self.ways[i].lru = self.clock;
                    match origin {
                        Origin::Loc => self.stats.hits_loc += 1,
                        Origin::Rem => self.stats.hits_rem += 1,
                    }
                    return ProbeResult::Hit { value, origin };
                }
                Block::Waiting { addr: a } if a == addr => {
                    self.ways[i].lru = self.clock;
                    self.stats.hits_waiting += 1;
                    return ProbeResult::HitWaiting;
                }
                _ => {}
            }
        }
        // Parallel probe of the victim cache; a hit swaps the block back.
        if let Some(block) = self.victim.take(addr) {
            self.stats.victim_hits += 1;
            let origin = if block.origin_is_rem {
                Origin::Rem
            } else {
                Origin::Loc
            };
            match origin {
                Origin::Loc => self.stats.hits_loc += 1,
                Origin::Rem => self.stats.hits_rem += 1,
            }
            self.install(addr, block.value, origin);
            return ProbeResult::Hit {
                value: block.value,
                origin,
            };
        }
        self.stats.misses += 1;
        ProbeResult::Miss
    }

    /// Hint the hardware prefetcher at the ways of `addr`'s set. With
    /// β = 4K blocks the way array is ~130 KiB — far beyond L1 — so a
    /// vector-mode probe pass that announces set N+`lookahead` while
    /// scanning set N hides most of the L2/L3 latency. No-op off x86_64.
    #[inline]
    fn prefetch_set(&self, addr: A) {
        #[cfg(target_arch = "x86_64")]
        {
            let start = self.set_of(addr) * self.config.assoc;
            // SAFETY: `start` indexes into `ways` (set_of masks to a
            // valid set); prefetch has no memory effects regardless.
            unsafe {
                std::arch::x86_64::_mm_prefetch(
                    self.ways.as_ptr().add(start) as *const i8,
                    std::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = addr;
    }

    /// Batched probe pass with software prefetch: for each address, a
    /// [`LrCache::probe`] with the miss-path [`LrCache::reserve`] folded
    /// in. Appends one [`BatchProbe`] per address onto `out`, in order.
    ///
    /// The per-lane cache-op sequence is *exactly* probe-then-reserve —
    /// the same calls, in the same order, a scalar caller would make —
    /// so clocks, statistics and replacement state end up bit-identical
    /// to the scalar path. The win is the prefetch distance: lane i
    /// announces lane i+8's set before touching lane i's, so the set
    /// scans run out of L1 instead of stalling on L2/L3.
    /// Re-evaluate the `Auto` prefetch decision from the windowed hit
    /// rate. Purely a performance toggle — probe/reserve semantics,
    /// statistics and replacement state are untouched, so deterministic
    /// runs stay bit-identical whatever it decides.
    fn maybe_retune_prefetch(&mut self) {
        let probes = self.stats.probes();
        let window = probes - self.auto_last_probes;
        if window < PrefetchMode::AUTO_WINDOW_PROBES {
            return;
        }
        let hits = self.stats.hits_loc + self.stats.hits_rem + self.stats.hits_waiting;
        let rate = (hits - self.auto_last_hits) as f64 / window as f64;
        self.prefetch_sets = self.auto_size_gate && rate < PrefetchMode::AUTO_RESIDENT_HIT_RATE;
        self.auto_last_probes = probes;
        self.auto_last_hits = hits;
    }

    pub fn probe_batch(&mut self, addrs: &[A], out: &mut Vec<BatchProbe<V>>) {
        const PREFETCH_DIST: usize = 8;
        if self.auto_adapt {
            self.maybe_retune_prefetch();
        }
        out.reserve(addrs.len());
        for (i, &addr) in addrs.iter().enumerate() {
            if self.prefetch_sets {
                if let Some(&ahead) = addrs.get(i + PREFETCH_DIST) {
                    self.prefetch_set(ahead);
                }
            }
            let lane = match self.probe(addr) {
                ProbeResult::Hit { value, origin } => BatchProbe::Hit { value, origin },
                ProbeResult::HitWaiting => BatchProbe::Waiting,
                ProbeResult::Miss => match self.reserve(addr) {
                    ReserveOutcome::Reserved => BatchProbe::MissReserved,
                    ReserveOutcome::SetFullOfWaiting => BatchProbe::MissUnrecorded,
                },
            };
            out.push(lane);
        }
    }

    /// Reserve a waiting block for `addr` after a miss (early recording).
    /// The entry's W bit stays set until [`LrCache::fill`] delivers the
    /// result. Idempotent: reserving an address that already has an
    /// entry (waiting or complete) re-marks that entry as waiting
    /// instead of creating a duplicate.
    pub fn reserve(&mut self, addr: A) -> ReserveOutcome {
        self.clock += 1;
        let set = self.set_of(addr);
        for i in self.set_range(set) {
            match self.ways[i].block {
                Block::Waiting { addr: a } | Block::Complete { addr: a, .. } if a == addr => {
                    self.ways[i].block = Block::Waiting { addr };
                    self.ways[i].lru = self.clock;
                    self.stats.reservations += 1;
                    return ReserveOutcome::Reserved;
                }
                _ => {}
            }
        }
        match self.pick_slot(set) {
            Some(i) => {
                self.evict_to_victim(i);
                self.ways[i] = Way {
                    block: Block::Waiting { addr },
                    lru: self.clock,
                    fifo: self.clock,
                };
                self.stats.reservations += 1;
                ReserveOutcome::Reserved
            }
            None => {
                self.stats.reservation_failures += 1;
                ReserveOutcome::SetFullOfWaiting
            }
        }
    }

    /// Deliver a lookup result. Completes the waiting entry for `addr` if
    /// one exists; otherwise inserts a fresh complete entry (the
    /// reservation may have failed earlier or been flushed away).
    pub fn fill(&mut self, addr: A, value: V, origin: Origin) -> FillOutcome {
        self.clock += 1;
        let range = self.set_range(self.set_of(addr));
        for i in range {
            match self.ways[i].block {
                Block::Waiting { addr: a } if a == addr => {
                    self.ways[i].block = Block::Complete {
                        addr,
                        value,
                        origin,
                    };
                    self.ways[i].lru = self.clock;
                    self.stats.fills += 1;
                    return FillOutcome::CompletedWaiting;
                }
                Block::Complete { addr: a, .. } if a == addr => {
                    // A newer result for the same address supersedes the
                    // cached one in place — no duplicates in a set.
                    self.ways[i].block = Block::Complete {
                        addr,
                        value,
                        origin,
                    };
                    self.ways[i].lru = self.clock;
                    return FillOutcome::Inserted;
                }
                _ => {}
            }
        }
        // Any stale victim-cache copy is superseded too.
        let _ = self.victim.take(addr);
        if self.install(addr, value, origin) {
            FillOutcome::Inserted
        } else {
            FillOutcome::Dropped
        }
    }

    /// Flush every block, main array and victim cache alike (§3.2: all
    /// entries are invalidated after each routing-table update).
    pub fn flush(&mut self) {
        for way in &mut self.ways {
            way.block = Block::Invalid;
        }
        self.victim.flush();
        self.stats.flushes += 1;
    }

    /// Invalidate exactly the entries whose address falls under the
    /// given prefix (`addr & mask == prefix_bits`), main array, waiting
    /// entries and victim cache alike. Returns the number of entries
    /// dropped and adds it to the `invalidations` statistic.
    ///
    /// This is the churn-friendly alternative to [`LrCache::flush`]: a
    /// routing update to one prefix only needs the results it covers
    /// re-resolved, so the rest of the working set survives. Waiting
    /// (W-bit) entries under the prefix are dropped too — their reply is
    /// still in flight and may carry a stale result; dropping the entry
    /// demotes the eventual [`LrCache::fill`] to a plain insert (or a
    /// no-op), which is safe, and same-address followers re-reserve.
    ///
    /// The prefix is passed as raw `(bits, len)` so this crate stays
    /// independent of the routing-table crate; callers with a
    /// `spal_rib::Prefix` pass `(p.bits(), p.len())`.
    ///
    /// # Panics
    /// Panics if `prefix_len` exceeds the address width.
    pub fn invalidate_covered(&mut self, prefix_bits: A, prefix_len: u8) -> usize {
        assert!(
            prefix_len <= A::BITS,
            "prefix length {prefix_len} out of range"
        );
        let covered = |addr: A| addr.covered_by(prefix_bits, prefix_len);
        let mut dropped = 0usize;
        for way in &mut self.ways {
            let addr = match way.block {
                Block::Invalid => continue,
                Block::Waiting { addr } | Block::Complete { addr, .. } => addr,
            };
            if covered(addr) {
                way.block = Block::Invalid;
                dropped += 1;
            }
        }
        dropped += self.victim.invalidate_where(covered);
        self.stats.invalidations += dropped as u64;
        dropped
    }

    /// Number of complete (shared) entries currently held, per M class:
    /// `(loc, rem)`. Diagnostic; O(blocks).
    pub fn occupancy(&self) -> (usize, usize) {
        let mut loc = 0;
        let mut rem = 0;
        for w in &self.ways {
            if let Block::Complete { origin, .. } = w.block {
                match origin {
                    Origin::Loc => loc += 1,
                    Origin::Rem => rem += 1,
                }
            }
        }
        (loc, rem)
    }

    /// Number of waiting (W-bit) entries. Diagnostic; O(blocks).
    pub fn waiting_count(&self) -> usize {
        self.ways
            .iter()
            .filter(|w| matches!(w.block, Block::Waiting { .. }))
            .count()
    }

    /// Iterate over every complete entry currently resident — main
    /// array and victim cache alike. Waiting (W-bit) entries carry no
    /// value yet and are skipped. Diagnostic; O(blocks).
    pub fn entries(&self) -> impl Iterator<Item = (A, V)> + '_ {
        self.ways
            .iter()
            .filter_map(|w| match w.block {
                Block::Complete { addr, value, .. } => Some((addr, value)),
                _ => None,
            })
            .chain(self.victim.entries())
    }

    /// Install a complete entry directly (victim promotion, or a fill
    /// whose reservation was lost). Returns false when every block in the
    /// set is waiting.
    fn install(&mut self, addr: A, value: V, origin: Origin) -> bool {
        let set = self.set_of(addr);
        let Some(i) = self.pick_slot(set) else {
            return false;
        };
        self.evict_to_victim(i);
        self.ways[i] = Way {
            block: Block::Complete {
                addr,
                value,
                origin,
            },
            lru: self.clock,
            fifo: self.clock,
        };
        true
    }

    /// Choose the way to (re)use in `set`: an invalid block if any,
    /// otherwise a complete block selected by the mix rule + policy.
    /// Waiting blocks are never evicted (their waiting lists would be
    /// orphaned). Returns `None` if all blocks are waiting.
    fn pick_slot(&mut self, set: usize) -> Option<usize> {
        let range = self.set_range(set);
        // Free slot first.
        for i in range.clone() {
            if matches!(self.ways[i].block, Block::Invalid) {
                return Some(i);
            }
        }
        // Count complete blocks per class.
        let mut loc = 0usize;
        let mut rem = 0usize;
        for i in range.clone() {
            if let Block::Complete { origin, .. } = self.ways[i].block {
                match origin {
                    Origin::Loc => loc += 1,
                    Origin::Rem => rem += 1,
                }
            }
        }
        if loc + rem == 0 {
            return None; // set entirely waiting
        }
        // The class exceeding its quota supplies the candidates (§3.2);
        // hardware checks the M bits of the set in parallel.
        let restrict = match self.config.mix_mode {
            MixMode::Ignore => None,
            MixMode::Enforce => {
                let loc_quota = self.config.assoc - self.rem_quota;
                if rem > self.rem_quota {
                    Some(Origin::Rem)
                } else if loc > loc_quota {
                    Some(Origin::Loc)
                } else {
                    None
                }
            }
        };
        let candidates = |filter: Option<Origin>| {
            let ways = &self.ways;
            range.clone().filter_map(move |i| match ways[i].block {
                Block::Complete { origin, .. } if filter.is_none() || filter == Some(origin) => {
                    Some((i, ways[i].lru, ways[i].fifo))
                }
                _ => None,
            })
        };
        let chosen = self
            .config
            .policy
            .choose(candidates(restrict), &mut self.rng)
            .or_else(|| self.config.policy.choose(candidates(None), &mut self.rng));
        debug_assert!(
            chosen.is_some(),
            "complete blocks exist, so a candidate does"
        );
        chosen
    }

    /// Move a complete block out of way `i` into the victim cache.
    fn evict_to_victim(&mut self, i: usize) {
        if let Block::Complete {
            addr,
            value,
            origin,
        } = self.ways[i].block
        {
            self.stats.evictions += 1;
            self.victim.insert(
                VictimBlock {
                    addr,
                    value,
                    origin_is_rem: origin == Origin::Rem,
                },
                &mut self.rng,
            );
        }
    }
}

/// An IPv6 LR-cache: identical §3.2 machinery keyed on `u128`
/// addresses (prefix lengths up to /128).
pub type LrCache6<V> = LrCache<V, u128>;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(assoc: usize, sets: usize) -> LrCache<u16> {
        LrCache::new(LrCacheConfig {
            blocks: assoc * sets,
            assoc,
            victim_blocks: 0,
            ..Default::default()
        })
    }

    #[test]
    fn probe_miss_reserve_fill_hit() {
        let mut c = tiny(4, 4);
        assert_eq!(c.probe(100), ProbeResult::Miss);
        assert_eq!(c.reserve(100), ReserveOutcome::Reserved);
        assert_eq!(c.probe(100), ProbeResult::HitWaiting);
        assert_eq!(c.fill(100, 7, Origin::Loc), FillOutcome::CompletedWaiting);
        assert_eq!(
            c.probe(100),
            ProbeResult::Hit {
                value: 7,
                origin: Origin::Loc
            }
        );
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits_waiting, 1);
        assert_eq!(s.hits_loc, 1);
        assert_eq!(s.reservations, 1);
        assert_eq!(s.fills, 1);
    }

    #[test]
    fn fill_without_reservation_inserts() {
        let mut c = tiny(4, 4);
        assert_eq!(c.fill(100, 7, Origin::Rem), FillOutcome::Inserted);
        assert_eq!(
            c.probe(100),
            ProbeResult::Hit {
                value: 7,
                origin: Origin::Rem
            }
        );
    }

    #[test]
    fn different_sets_do_not_collide() {
        let mut c = tiny(2, 4); // sets indexed by low 2 bits
        c.fill(0, 10, Origin::Loc);
        c.fill(1, 11, Origin::Loc);
        c.fill(2, 12, Origin::Loc);
        c.fill(3, 13, Origin::Loc);
        for a in 0..4u32 {
            assert!(matches!(c.probe(a), ProbeResult::Hit { value, .. } if value == 10 + a as u16));
        }
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny(2, 1);
        c.fill(0, 1, Origin::Loc);
        c.fill(4, 2, Origin::Loc); // same set (one set only)
        c.probe(0); // make 4 the LRU
        c.fill(8, 3, Origin::Loc); // evicts 4
        assert!(matches!(c.probe(0), ProbeResult::Hit { value: 1, .. }));
        assert!(matches!(c.probe(8), ProbeResult::Hit { value: 3, .. }));
        assert_eq!(c.probe(4), ProbeResult::Miss);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn mix_rule_evicts_over_represented_class() {
        // assoc 4, γ = 50 % → REM quota 2.
        let mut c: LrCache<u16> = LrCache::new(LrCacheConfig {
            blocks: 4,
            assoc: 4,
            victim_blocks: 0,
            mix_rem_fraction: 0.5,
            ..Default::default()
        });
        // 3 REM + 1 LOC, then insert: REM exceeds quota → a REM goes.
        c.fill(0, 1, Origin::Rem);
        c.fill(4, 2, Origin::Rem);
        c.fill(8, 3, Origin::Rem);
        c.fill(12, 4, Origin::Loc);
        // LRU among REM is addr 0.
        c.fill(16, 5, Origin::Loc);
        assert_eq!(c.probe(0), ProbeResult::Miss);
        assert!(matches!(c.probe(12), ProbeResult::Hit { value: 4, .. }));
        assert!(matches!(c.probe(16), ProbeResult::Hit { value: 5, .. }));
    }

    #[test]
    fn mix_rule_protects_under_represented_class() {
        // 3 LOC + 1 REM with γ = 50 %: LOC (quota 2) is over → LOC evicted
        // even though the REM block is the LRU.
        let mut c: LrCache<u16> = LrCache::new(LrCacheConfig {
            blocks: 4,
            assoc: 4,
            victim_blocks: 0,
            mix_rem_fraction: 0.5,
            ..Default::default()
        });
        c.fill(0, 1, Origin::Rem); // LRU overall
        c.fill(4, 2, Origin::Loc);
        c.fill(8, 3, Origin::Loc);
        c.fill(12, 4, Origin::Loc);
        c.fill(16, 5, Origin::Loc);
        // REM survived; the oldest LOC (addr 4) went.
        assert!(matches!(c.probe(0), ProbeResult::Hit { value: 1, .. }));
        assert_eq!(c.probe(4), ProbeResult::Miss);
    }

    #[test]
    fn mix_ignore_mode_is_plain_lru() {
        let mut c: LrCache<u16> = LrCache::new(LrCacheConfig {
            blocks: 4,
            assoc: 4,
            victim_blocks: 0,
            mix_mode: MixMode::Ignore,
            ..Default::default()
        });
        c.fill(0, 1, Origin::Rem); // LRU overall
        c.fill(4, 2, Origin::Loc);
        c.fill(8, 3, Origin::Loc);
        c.fill(12, 4, Origin::Loc);
        c.fill(16, 5, Origin::Loc);
        assert_eq!(c.probe(0), ProbeResult::Miss); // plain LRU evicted REM
    }

    #[test]
    fn waiting_blocks_are_not_evicted() {
        let mut c = tiny(2, 1);
        c.reserve(0);
        c.reserve(4);
        // Set is now entirely waiting.
        assert_eq!(c.reserve(8), ReserveOutcome::SetFullOfWaiting);
        assert_eq!(c.fill(12, 9, Origin::Loc), FillOutcome::Dropped);
        assert_eq!(c.stats().reservation_failures, 1);
        // Completing one waiter frees the set for future evictions.
        assert_eq!(c.fill(0, 1, Origin::Loc), FillOutcome::CompletedWaiting);
        assert_eq!(c.reserve(8), ReserveOutcome::Reserved);
        // The waiting entry for 4 must still be there.
        assert_eq!(c.probe(4), ProbeResult::HitWaiting);
    }

    #[test]
    fn victim_cache_rescues_conflict_misses() {
        let mut with_victim: LrCache<u16> = LrCache::new(LrCacheConfig {
            blocks: 4,
            assoc: 4,
            victim_blocks: 8,
            ..Default::default()
        });
        // Fill the set, then overflow it.
        for i in 0..5u32 {
            with_victim.fill(i * 4, i as u16, Origin::Loc);
        }
        // The evicted block (addr 0) is in the victim cache: still a hit.
        assert!(matches!(
            with_victim.probe(0),
            ProbeResult::Hit { value: 0, .. }
        ));
        assert_eq!(with_victim.stats().victim_hits, 1);
    }

    #[test]
    fn victim_promotion_preserves_origin() {
        let mut c: LrCache<u16> = LrCache::new(LrCacheConfig {
            blocks: 4,
            assoc: 4,
            victim_blocks: 8,
            mix_mode: MixMode::Ignore,
            ..Default::default()
        });
        c.fill(0, 1, Origin::Rem);
        for i in 1..5u32 {
            c.fill(i * 4, i as u16, Origin::Loc);
        }
        match c.probe(0) {
            ProbeResult::Hit { origin, .. } => assert_eq!(origin, Origin::Rem),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c: LrCache<u16> = LrCache::new(LrCacheConfig::default());
        c.fill(1, 1, Origin::Loc);
        c.reserve(2);
        c.flush();
        assert_eq!(c.probe(1), ProbeResult::Miss);
        assert_eq!(c.probe(2), ProbeResult::Miss);
        assert_eq!(c.occupancy(), (0, 0));
        assert_eq!(c.waiting_count(), 0);
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn invalidate_covered_is_prefix_targeted() {
        let mut c: LrCache<u16> = LrCache::new(LrCacheConfig::default());
        // Two addresses under 10.0.0.0/8, one outside it.
        c.fill(0x0A00_0001, 1, Origin::Loc);
        c.fill(0x0A01_0002, 2, Origin::Rem);
        c.fill(0xC0A8_0001, 3, Origin::Loc);
        let dropped = c.invalidate_covered(0x0A00_0000, 8);
        assert_eq!(dropped, 2);
        assert_eq!(c.probe(0x0A00_0001), ProbeResult::Miss);
        assert_eq!(c.probe(0x0A01_0002), ProbeResult::Miss);
        assert!(matches!(
            c.probe(0xC0A8_0001),
            ProbeResult::Hit { value: 3, .. }
        ));
        assert_eq!(c.stats().invalidations, 2);
        assert_eq!(c.stats().flushes, 0);
    }

    #[test]
    fn invalidate_covered_drops_waiting_entries() {
        let mut c: LrCache<u16> = LrCache::new(LrCacheConfig::default());
        c.reserve(0x0A00_0001);
        c.reserve(0xC0A8_0001);
        assert_eq!(c.invalidate_covered(0x0A00_0000, 8), 1);
        assert_eq!(c.probe(0x0A00_0001), ProbeResult::Miss);
        assert_eq!(c.probe(0xC0A8_0001), ProbeResult::HitWaiting);
        // The in-flight reply now inserts as a fresh complete entry.
        assert_eq!(c.fill(0x0A00_0001, 9, Origin::Rem), FillOutcome::Inserted);
    }

    #[test]
    fn invalidate_covered_reaches_victim_cache() {
        let mut c: LrCache<u16> = LrCache::new(LrCacheConfig {
            blocks: 4,
            assoc: 4,
            victim_blocks: 8,
            ..Default::default()
        });
        // Overflow the single set so addr 0 lands in the victim cache.
        for i in 0..5u32 {
            c.fill(i * 4, i as u16, Origin::Loc);
        }
        // addr 0 is only in the victim cache now; a /30 around it evicts
        // it there without touching the main array's other entries.
        assert_eq!(c.invalidate_covered(0, 30), 1);
        assert_eq!(c.probe(0), ProbeResult::Miss);
        assert!(matches!(c.probe(8), ProbeResult::Hit { value: 2, .. }));
    }

    #[test]
    fn invalidate_covered_zero_length_equals_flush() {
        let mut targeted: LrCache<u16> = LrCache::new(LrCacheConfig::default());
        let mut flushed: LrCache<u16> = LrCache::new(LrCacheConfig::default());
        for i in 0..64u32 {
            targeted.fill(i * 131, i as u16, Origin::Loc);
            flushed.fill(i * 131, i as u16, Origin::Loc);
        }
        targeted.invalidate_covered(0, 0);
        flushed.flush();
        assert_eq!(targeted.occupancy(), (0, 0));
        assert_eq!(targeted.occupancy(), flushed.occupancy());
        // Only the stats differ: one counts invalidations, one a flush.
        assert_eq!(targeted.stats().invalidations, 64);
        assert_eq!(flushed.stats().flushes, 1);
    }

    #[test]
    fn occupancy_tracks_classes() {
        let mut c: LrCache<u16> = LrCache::new(LrCacheConfig::default());
        c.fill(1, 1, Origin::Loc);
        c.fill(2, 2, Origin::Rem);
        c.fill(3, 3, Origin::Rem);
        c.reserve(4);
        assert_eq!(c.occupancy(), (1, 2));
        assert_eq!(c.waiting_count(), 1);
    }

    #[test]
    fn probe_batch_mirrors_scalar_sequence() {
        // The batched pass must leave the cache (state AND statistics)
        // exactly where the equivalent scalar probe/reserve loop does.
        let mut batched = tiny(4, 4);
        let mut scalar = tiny(4, 4);
        // Mixed workload: repeats (hits), fresh addresses (misses), an
        // address left waiting (Waiting lanes).
        let addrs: Vec<u32> = vec![100, 104, 100, 108, 104, 100, 112, 108];
        scalar.fill(104, 7, Origin::Rem);
        batched.fill(104, 7, Origin::Rem);

        let mut out = Vec::new();
        batched.probe_batch(&addrs, &mut out);

        let mut expected = Vec::new();
        for &a in &addrs {
            expected.push(match scalar.probe(a) {
                ProbeResult::Hit { value, origin } => BatchProbe::Hit { value, origin },
                ProbeResult::HitWaiting => BatchProbe::Waiting,
                ProbeResult::Miss => match scalar.reserve(a) {
                    ReserveOutcome::Reserved => BatchProbe::MissReserved,
                    ReserveOutcome::SetFullOfWaiting => BatchProbe::MissUnrecorded,
                },
            });
        }
        assert_eq!(out, expected);
        assert_eq!(batched.stats(), scalar.stats());
        assert_eq!(batched.waiting_count(), scalar.waiting_count());
        assert_eq!(batched.occupancy(), scalar.occupancy());
    }

    #[test]
    fn probe_batch_lane_kinds() {
        let mut c = tiny(2, 1); // one set, two ways
        c.fill(0, 5, Origin::Loc);
        let mut out = Vec::new();
        // 0 hits; 4 reserves; 4 again waits; 8 finds the set full
        // (one complete + one waiting, waiting never evicted… actually
        // the complete block for 0 is evictable). Use a second reserve
        // to fill the set with waiters first.
        c.reserve(4);
        c.reserve(0); // re-marks 0 waiting: set now entirely waiting
        c.probe_batch(&[4, 8], &mut out);
        assert_eq!(out, vec![BatchProbe::Waiting, BatchProbe::MissUnrecorded]);
        out.clear();
        c.fill(4, 9, Origin::Rem);
        c.probe_batch(&[4, 12], &mut out);
        assert_eq!(
            out,
            vec![
                BatchProbe::Hit {
                    value: 9,
                    origin: Origin::Rem
                },
                BatchProbe::MissReserved,
            ]
        );
    }

    #[test]
    fn probe_batch_empty_is_noop() {
        let mut c = tiny(4, 4);
        let mut out = Vec::new();
        c.probe_batch(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(c.stats().misses, 0);
    }

    /// A way array big enough to fail the `Auto` size gate at build
    /// time (> 512 KiB for `LrCache<u32, u32>`).
    fn big_auto_cache(prefetch: PrefetchMode) -> LrCache<u32> {
        LrCache::new(LrCacheConfig {
            blocks: 32_768,
            prefetch,
            ..LrCacheConfig::paper(32_768)
        })
    }

    #[test]
    fn auto_prefetch_disables_on_resident_working_set() {
        let mut c = big_auto_cache(PrefetchMode::Auto);
        assert!(
            c.prefetch_active(),
            "large array should start with prefetch on"
        );
        // A small, fully cached working set: after warm-up every probe
        // hits, so the windowed hit rate crosses the resident threshold.
        let addrs: Vec<u32> = (0..512u32).map(|i| i.wrapping_mul(7919)).collect();
        for &a in &addrs {
            c.reserve(a);
            c.fill(a, 1, Origin::Loc);
        }
        let mut out = Vec::new();
        let rounds = (2 * PrefetchMode::AUTO_WINDOW_PROBES as usize) / addrs.len();
        for _ in 0..rounds {
            out.clear();
            c.probe_batch(&addrs, &mut out);
        }
        assert!(
            !c.prefetch_active(),
            "resident working set should turn prefetch off"
        );
        // A cold, striding working set turns it back on.
        let mut cold: Vec<u32> = Vec::new();
        let mut x = 1u32;
        while cold.len() < 2 * PrefetchMode::AUTO_WINDOW_PROBES as usize + 4_096 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            cold.push(x);
        }
        for chunk in cold.chunks(256) {
            out.clear();
            c.probe_batch(chunk, &mut out);
        }
        assert!(
            c.prefetch_active(),
            "cold striding traffic should turn prefetch back on"
        );
    }

    #[test]
    fn explicit_prefetch_modes_never_adapt() {
        for (mode, expect) in [(PrefetchMode::Always, true), (PrefetchMode::Never, false)] {
            let mut c = big_auto_cache(mode);
            assert_eq!(c.prefetch_active(), expect);
            let addrs: Vec<u32> = (0..256u32).collect();
            for &a in &addrs {
                c.reserve(a);
                c.fill(a, 1, Origin::Loc);
            }
            let mut out = Vec::new();
            for _ in 0..(2 * PrefetchMode::AUTO_WINDOW_PROBES as usize / addrs.len()) {
                out.clear();
                c.probe_batch(&addrs, &mut out);
            }
            assert_eq!(c.prefetch_active(), expect, "{mode:?} must not adapt");
        }
    }

    #[test]
    fn auto_prefetch_small_array_stays_off() {
        // The paper's β = 4K way array is ~130 KiB — under the size
        // gate, so Auto never prefetches no matter the hit rate.
        let c: LrCache<u32> = LrCache::new(LrCacheConfig::paper(4096));
        assert!(!c.prefetch_active());
    }

    /// Profiling harness for EXPERIMENTS.md (run with `--ignored`):
    /// times the batched probe pass over a cache-resident working set
    /// with prefetch forced on, forced off, and Auto.
    #[test]
    #[ignore]
    fn profile_prefetch_on_resident_working_set() {
        for mode in [
            PrefetchMode::Always,
            PrefetchMode::Never,
            PrefetchMode::Auto,
        ] {
            let mut c = big_auto_cache(mode);
            let addrs: Vec<u32> = (0..2_048u32)
                .map(|i| i.wrapping_mul(2_654_435_761))
                .collect();
            for &a in &addrs {
                c.reserve(a);
                c.fill(a, 1, Origin::Loc);
            }
            let mut out = Vec::new();
            // Warm-up (lets Auto converge), then the timed pass.
            for _ in 0..64 {
                out.clear();
                c.probe_batch(&addrs, &mut out);
            }
            let t0 = std::time::Instant::now();
            let rounds = 2_000;
            for _ in 0..rounds {
                out.clear();
                c.probe_batch(&addrs, &mut out);
            }
            let ns = t0.elapsed().as_nanos() as f64 / (rounds * addrs.len()) as f64;
            println!(
                "{mode:?}: {ns:.2} ns/probe (prefetch_active={})",
                c.prefetch_active()
            );
        }
    }

    #[test]
    fn paper_config_gamma_rule() {
        assert!((LrCacheConfig::paper(1024).mix_rem_fraction - 0.25).abs() < 1e-12);
        assert!((LrCacheConfig::paper(2048).mix_rem_fraction - 0.5).abs() < 1e-12);
        assert!((LrCacheConfig::paper(4096).mix_rem_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_sets_rejected() {
        let _ = LrCache::<u16>::new(LrCacheConfig {
            blocks: 12,
            assoc: 4,
            ..Default::default()
        });
    }

    #[test]
    fn xorfold_differs_from_lowbits() {
        let mut a: LrCache<u16> = LrCache::new(LrCacheConfig {
            blocks: 64,
            assoc: 4,
            victim_blocks: 0,
            index_scheme: IndexScheme::LowBits,
            ..Default::default()
        });
        let mut b: LrCache<u16> = LrCache::new(LrCacheConfig {
            blocks: 64,
            assoc: 4,
            victim_blocks: 0,
            index_scheme: IndexScheme::XorFold,
            ..Default::default()
        });
        // Addresses differing only in high bits collide under LowBits but
        // spread under XorFold.
        let addrs: Vec<u32> = (0..8).map(|i| i << 16).collect();
        for &x in &addrs {
            a.fill(x, 1, Origin::Loc);
            b.fill(x, 1, Origin::Loc);
        }
        let a_hits = addrs
            .iter()
            .filter(|&&x| matches!(a.probe(x), ProbeResult::Hit { .. }))
            .count();
        let b_hits = addrs
            .iter()
            .filter(|&&x| matches!(b.probe(x), ProbeResult::Hit { .. }))
            .count();
        assert!(b_hits > a_hits, "xorfold {b_hits} vs lowbits {a_hits}");
    }
}
