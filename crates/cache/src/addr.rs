//! Address widths the LR-cache can key on.
//!
//! The paper's cache stores IPv4 destinations, but the §3.2 machinery
//! (set probe, W/M status bits, mix-aware replacement, prefix-targeted
//! invalidation) never looks *inside* an address beyond indexing and
//! prefix masking, so the cache is generic over a [`CacheAddr`]:
//! `u32` (IPv4, the default type parameter) or `u128` (IPv6).

/// An address type the LR-cache can index and prefix-match.
pub trait CacheAddr: Copy + Eq + std::hash::Hash + std::fmt::Debug {
    /// Address width in bits (32 for IPv4, 128 for IPv6).
    const BITS: u8;

    /// Low bits of the address, for the `LowBits` set-index scheme.
    fn low_bits(self) -> usize;

    /// XOR-fold of the whole address into one word, for `XorFold`.
    fn xor_fold(self) -> usize;

    /// Whether this address falls under `prefix_bits/prefix_len`
    /// (`prefix_len == 0` covers everything).
    fn covered_by(self, prefix_bits: Self, prefix_len: u8) -> bool;
}

impl CacheAddr for u32 {
    const BITS: u8 = 32;

    #[inline]
    fn low_bits(self) -> usize {
        self as usize
    }

    #[inline]
    fn xor_fold(self) -> usize {
        (self ^ (self >> 16)) as usize
    }

    #[inline]
    fn covered_by(self, prefix_bits: u32, prefix_len: u8) -> bool {
        debug_assert!(prefix_len <= 32);
        let mask = if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len)
        };
        self & mask == prefix_bits & mask
    }
}

impl CacheAddr for u128 {
    const BITS: u8 = 128;

    #[inline]
    fn low_bits(self) -> usize {
        self as usize
    }

    #[inline]
    fn xor_fold(self) -> usize {
        let folded = self ^ (self >> 64);
        let folded = (folded as u64) ^ ((folded as u64) >> 32);
        folded as usize
    }

    #[inline]
    fn covered_by(self, prefix_bits: u128, prefix_len: u8) -> bool {
        debug_assert!(prefix_len <= 128);
        let mask = if prefix_len == 0 {
            0
        } else {
            u128::MAX << (128 - prefix_len)
        };
        self & mask == prefix_bits & mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v4_coverage_edges() {
        assert!(0xFFFF_FFFFu32.covered_by(0, 0));
        assert!(0u32.covered_by(0, 0));
        assert!(0x0A00_0001u32.covered_by(0x0A00_0000, 8));
        assert!(!0x0B00_0001u32.covered_by(0x0A00_0000, 8));
        assert!(0x0A00_0001u32.covered_by(0x0A00_0001, 32));
        assert!(!0x0A00_0001u32.covered_by(0x0A00_0000, 32));
    }

    #[test]
    fn v6_coverage_edges() {
        let a: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0001;
        assert!(a.covered_by(0, 0));
        assert!(a.covered_by(0x2001_0db8_0000_0000_0000_0000_0000_0000, 32));
        assert!(!a.covered_by(0x2001_0db9_0000_0000_0000_0000_0000_0000, 32));
        assert!(a.covered_by(a, 128));
        assert!(!a.covered_by(a ^ 1, 128));
    }

    #[test]
    fn v6_fold_mixes_high_bits() {
        // Addresses differing only above bit 64 must still fold apart.
        let a: u128 = 1 << 100;
        let b: u128 = 2 << 100;
        assert_ne!(a.xor_fold(), b.xor_fold());
    }
}
