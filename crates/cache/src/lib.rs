//! The **LR-cache** — SPAL's lookup-result cache (§3.2 of the paper).
//!
//! Every line card holds a small on-chip set-associative cache of
//! `<IP address, Next_hop_LC#>` pairs inside its fabric-interface-logic
//! chip. This crate implements it exactly as §3.2 describes:
//!
//! * 4-way set associativity by default (higher degrees buy almost
//!   nothing, per the paper's simulations and ref \[16\]), block = one
//!   lookup result (spatial locality of IP destinations is weak);
//! * per-entry **availability** state (invalid → shared), an **M bit**
//!   recording whether the result was obtained locally (`LOC`) or from a
//!   remote FE (`REM`), and a **W bit** marking a reserved entry whose
//!   reply is still in flight (early cache-block recording);
//! * **mix-aware replacement**: when a set is full, the class (LOC/REM)
//!   exceeding its share of the mix target γ supplies the eviction
//!   candidates, and a conventional policy (LRU/FIFO/random) picks among
//!   them;
//! * an 8-block fully-associative **victim cache** probed in parallel
//!   with the main array;
//! * whole-cache **flush** after every routing-table update.
//!
//! The cache is generic over the stored value so it does not depend on
//! the routing-table crate; SPAL stores `NextHop` in it.

pub mod addr;
pub mod lr;
pub mod policy;
pub mod range;
pub mod stats;
pub mod victim;

pub use addr::CacheAddr;
pub use lr::{
    BatchProbe, FillOutcome, IndexScheme, LrCache, LrCache6, LrCacheConfig, MixMode, Origin,
    PrefetchMode, ProbeResult, ReserveOutcome,
};
pub use policy::ReplacementPolicy;
pub use stats::CacheStats;
