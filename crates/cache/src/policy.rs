//! Conventional replacement policies applied *after* the mix rule has
//! narrowed the candidate set (§3.2: "A conventional replacement strategy
//! (such as LRU, FIFO, or random) is then applied to the candidate
//! block(s)").

use rand::rngs::SmallRng;
use rand::Rng;

/// The conventional replacement strategy used among eviction candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used (the paper's default for both the LR-cache and
    /// the victim cache).
    #[default]
    Lru,
    /// First-in-first-out.
    Fifo,
    /// Uniform random choice.
    Random,
}

impl ReplacementPolicy {
    /// Pick the index of the candidate to evict.
    ///
    /// `stamps` yields `(candidate_index, lru_stamp, fifo_stamp)` per
    /// candidate; smaller stamps are older. `rng` is used only by
    /// [`ReplacementPolicy::Random`].
    pub fn choose(
        self,
        candidates: impl Iterator<Item = (usize, u64, u64)>,
        rng: &mut SmallRng,
    ) -> Option<usize> {
        match self {
            ReplacementPolicy::Lru => candidates.min_by_key(|&(_, lru, _)| lru).map(|c| c.0),
            ReplacementPolicy::Fifo => candidates.min_by_key(|&(_, _, fifo)| fifo).map(|c| c.0),
            ReplacementPolicy::Random => {
                let v: Vec<usize> = candidates.map(|c| c.0).collect();
                if v.is_empty() {
                    None
                } else {
                    Some(v[rng.gen_range(0..v.len())])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    #[test]
    fn lru_picks_oldest_access() {
        let cands = [(0usize, 30u64, 1u64), (1, 10, 2), (2, 20, 3)];
        assert_eq!(
            ReplacementPolicy::Lru.choose(cands.into_iter(), &mut rng()),
            Some(1)
        );
    }

    #[test]
    fn fifo_picks_oldest_insert() {
        let cands = [(0usize, 30u64, 5u64), (1, 10, 9), (2, 20, 3)];
        assert_eq!(
            ReplacementPolicy::Fifo.choose(cands.into_iter(), &mut rng()),
            Some(2)
        );
    }

    #[test]
    fn random_picks_a_candidate() {
        let cands = [(4usize, 0u64, 0u64), (7, 0, 0)];
        let pick = ReplacementPolicy::Random
            .choose(cands.into_iter(), &mut rng())
            .unwrap();
        assert!(pick == 4 || pick == 7);
    }

    #[test]
    fn empty_candidates_yield_none() {
        for p in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            assert_eq!(p.choose(std::iter::empty(), &mut rng()), None);
        }
    }
}
