//! Address-range caching — the approach of Chiueh & Pradhan, "Cache
//! Memory Design for Internet Processors" (ref \[6\], discussed in §2.2
//! of the paper).
//!
//! Instead of one `<address, result>` pair per block, each entry covers a
//! *range* of contiguous addresses sharing the same lookup result, so one
//! entry can satisfy many distinct destinations. The paper's §2.2
//! counter-argument, which the E12 experiment reproduces: backbone tables
//! carry /32 host routes and growing numbers of prefix exceptions, which
//! fragment the range structure down to single addresses and erase the
//! coverage advantage.

use std::collections::VecDeque;

/// One cached range: `[start, end]` inclusive, all resolving to `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeEntry<V> {
    pub start: u32,
    pub end: u32,
    pub value: V,
}

impl<V> RangeEntry<V> {
    /// Whether `addr` falls inside this range.
    #[inline]
    pub fn contains(&self, addr: u32) -> bool {
        self.start <= addr && addr <= self.end
    }
}

/// Simple hit/miss accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeCacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl RangeCacheStats {
    /// Fraction of probes that hit.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fully-associative LRU cache of address ranges (ref \[6\] maps them
/// onto CPU cache lines; full associativity with LRU is the favourable
/// end of its design space, so the comparison cannot be accused of
/// handicapping the baseline).
#[derive(Debug, Clone)]
pub struct RangeCache<V> {
    entries: VecDeque<RangeEntry<V>>, // front = most recent
    capacity: usize,
    stats: RangeCacheStats,
}

impl<V: Copy + Eq> RangeCache<V> {
    /// A cache holding at most `capacity` ranges.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "range cache needs at least one entry");
        RangeCache {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            stats: RangeCacheStats::default(),
        }
    }

    /// Probe for `addr`: a hit returns the covering range's value and
    /// refreshes its recency.
    pub fn probe(&mut self, addr: u32) -> Option<V> {
        match self.entries.iter().position(|e| e.contains(addr)) {
            Some(i) => {
                let e = self.entries.remove(i).expect("index valid");
                self.entries.push_front(e);
                self.stats.hits += 1;
                Some(e.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly resolved range, evicting the LRU entry if full.
    pub fn insert(&mut self, entry: RangeEntry<V>) {
        debug_assert!(entry.start <= entry.end, "inverted range");
        // Ranges are disjoint by construction (they come from one
        // interval map); same-start re-insertion replaces.
        if let Some(i) = self.entries.iter().position(|e| e.start == entry.start) {
            self.entries.remove(i);
        }
        if self.entries.len() >= self.capacity {
            self.entries.pop_back();
        }
        self.entries.push_front(entry);
    }

    /// Number of cached ranges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accounting.
    pub fn stats(&self) -> &RangeCacheStats {
        &self.stats
    }

    /// Drop everything (routing-table update).
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(start: u32, end: u32, v: u16) -> RangeEntry<u16> {
        RangeEntry {
            start,
            end,
            value: v,
        }
    }

    #[test]
    fn range_hit_covers_many_addresses() {
        let mut c = RangeCache::new(4);
        c.insert(r(100, 199, 7));
        for addr in [100u32, 150, 199] {
            assert_eq!(c.probe(addr), Some(7));
        }
        assert_eq!(c.probe(99), None);
        assert_eq!(c.probe(200), None);
        assert!((c.stats().hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction() {
        let mut c = RangeCache::new(2);
        c.insert(r(0, 9, 1));
        c.insert(r(10, 19, 2));
        assert_eq!(c.probe(5), Some(1)); // refresh range 0..9
        c.insert(r(20, 29, 3)); // evicts 10..19
        assert_eq!(c.probe(15), None);
        assert_eq!(c.probe(5), Some(1));
        assert_eq!(c.probe(25), Some(3));
    }

    #[test]
    fn reinsert_same_start_replaces() {
        let mut c = RangeCache::new(4);
        c.insert(r(0, 9, 1));
        c.insert(r(0, 9, 2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.probe(3), Some(2));
    }

    #[test]
    fn single_address_ranges_degenerate_to_exact_cache() {
        // The Sec. 2.2 point: with /32 exceptions the minimum range size
        // is 1 and a range entry covers exactly one destination.
        let mut c = RangeCache::new(2);
        c.insert(r(5, 5, 1));
        assert_eq!(c.probe(5), Some(1));
        assert_eq!(c.probe(6), None);
    }

    #[test]
    fn flush_clears() {
        let mut c = RangeCache::new(2);
        c.insert(r(0, 9, 1));
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.probe(5), None);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _: RangeCache<u16> = RangeCache::new(0);
    }
}
