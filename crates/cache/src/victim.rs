//! The victim cache: a small fully-associative cache holding blocks
//! evicted from the main array by conflict misses (§3.2). The paper
//! equips every LR-cache with an 8-block victim cache and probes it in
//! parallel with the main array.

use crate::addr::CacheAddr;
use crate::policy::ReplacementPolicy;
use rand::rngs::SmallRng;

/// A complete (non-waiting) block stored in the victim cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimBlock<V, A: CacheAddr = u32> {
    pub addr: A,
    pub value: V,
    /// The M bit travels with the block so a promoted entry keeps its
    /// LOC/REM class.
    pub origin_is_rem: bool,
}

#[derive(Debug, Clone)]
struct Slot<V, A: CacheAddr> {
    block: VictimBlock<V, A>,
    lru: u64,
    fifo: u64,
}

/// Fully-associative victim cache with a configurable capacity and
/// replacement policy (LRU by default, matching §5.1).
#[derive(Debug, Clone)]
pub struct VictimCache<V, A: CacheAddr = u32> {
    slots: Vec<Slot<V, A>>,
    capacity: usize,
    policy: ReplacementPolicy,
    clock: u64,
}

impl<V: Copy + Eq, A: CacheAddr> VictimCache<V, A> {
    /// Create a victim cache with `capacity` blocks (0 disables it).
    pub fn new(capacity: usize, policy: ReplacementPolicy) -> Self {
        VictimCache {
            slots: Vec::with_capacity(capacity),
            capacity,
            policy,
            clock: 0,
        }
    }

    /// Number of blocks currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the victim cache holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Configured capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `addr`; on a hit the block is *removed* (the caller
    /// promotes it back into the main array, the classic swap).
    pub fn take(&mut self, addr: A) -> Option<VictimBlock<V, A>> {
        let pos = self.slots.iter().position(|s| s.block.addr == addr)?;
        Some(self.slots.swap_remove(pos).block)
    }

    /// Non-destructive lookup (used by probes that only need the value).
    pub fn peek(&mut self, addr: A) -> Option<VictimBlock<V, A>> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self.slots.iter_mut().find(|s| s.block.addr == addr)?;
        slot.lru = clock;
        Some(slot.block)
    }

    /// Insert a block evicted from the main array, evicting by policy if
    /// full. Returns the displaced block, if any.
    pub fn insert(
        &mut self,
        block: VictimBlock<V, A>,
        rng: &mut SmallRng,
    ) -> Option<VictimBlock<V, A>> {
        if self.capacity == 0 {
            return Some(block);
        }
        self.clock += 1;
        // Same address may re-arrive after a promote/evict cycle; replace.
        if let Some(slot) = self.slots.iter_mut().find(|s| s.block.addr == block.addr) {
            let old = slot.block;
            slot.block = block;
            slot.lru = self.clock;
            slot.fifo = self.clock;
            return Some(old);
        }
        if self.slots.len() < self.capacity {
            self.slots.push(Slot {
                block,
                lru: self.clock,
                fifo: self.clock,
            });
            return None;
        }
        let idx = self
            .policy
            .choose(
                self.slots
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i, s.lru, s.fifo)),
                rng,
            )
            .expect("victim cache is full, so candidates exist");
        let displaced = self.slots[idx].block;
        self.slots[idx] = Slot {
            block,
            lru: self.clock,
            fifo: self.clock,
        };
        Some(displaced)
    }

    /// Iterate over every resident block's `(addr, value)` pair.
    pub fn entries(&self) -> impl Iterator<Item = (A, V)> + '_ {
        self.slots.iter().map(|s| (s.block.addr, s.block.value))
    }

    /// Drop every block (routing-table update flush).
    pub fn flush(&mut self) {
        self.slots.clear();
    }

    /// Drop every block whose address satisfies `covered`, returning the
    /// number removed (prefix-targeted invalidation after a routing
    /// update).
    pub fn invalidate_where(&mut self, covered: impl Fn(A) -> bool) -> usize {
        let before = self.slots.len();
        self.slots.retain(|s| !covered(s.block.addr));
        before - self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(3)
    }

    fn blk(addr: u32, value: u16) -> VictimBlock<u16> {
        VictimBlock {
            addr,
            value,
            origin_is_rem: false,
        }
    }

    #[test]
    fn take_removes() {
        let mut v = VictimCache::new(8, ReplacementPolicy::Lru);
        v.insert(blk(1, 10), &mut rng());
        assert_eq!(v.take(1).unwrap().value, 10);
        assert!(v.take(1).is_none());
        assert!(v.is_empty());
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut v = VictimCache::new(2, ReplacementPolicy::Lru);
        let mut r = rng();
        assert!(v.insert(blk(1, 1), &mut r).is_none());
        assert!(v.insert(blk(2, 2), &mut r).is_none());
        // Touch 1 so 2 becomes LRU.
        assert!(v.peek(1).is_some());
        let displaced = v.insert(blk(3, 3), &mut r).unwrap();
        assert_eq!(displaced.addr, 2);
        assert_eq!(v.len(), 2);
        assert!(v.peek(1).is_some() && v.peek(3).is_some());
    }

    #[test]
    fn zero_capacity_rejects() {
        let mut v = VictimCache::new(0, ReplacementPolicy::Lru);
        let rejected = v.insert(blk(1, 1), &mut rng()).unwrap();
        assert_eq!(rejected.addr, 1);
        assert!(v.is_empty());
    }

    #[test]
    fn duplicate_address_replaces() {
        let mut v = VictimCache::new(4, ReplacementPolicy::Lru);
        let mut r = rng();
        v.insert(blk(5, 1), &mut r);
        let old = v.insert(blk(5, 2), &mut r).unwrap();
        assert_eq!(old.value, 1);
        assert_eq!(v.len(), 1);
        assert_eq!(v.peek(5).unwrap().value, 2);
    }

    #[test]
    fn flush_clears() {
        let mut v = VictimCache::new(4, ReplacementPolicy::Fifo);
        v.insert(blk(1, 1), &mut rng());
        v.flush();
        assert!(v.is_empty());
        assert!(v.peek(1).is_none());
    }

    #[test]
    fn fifo_eviction_ignores_touches() {
        let mut v = VictimCache::new(2, ReplacementPolicy::Fifo);
        let mut r = rng();
        v.insert(blk(1, 1), &mut r);
        v.insert(blk(2, 2), &mut r);
        v.peek(1); // FIFO ignores recency
        let displaced = v.insert(blk(3, 3), &mut r).unwrap();
        assert_eq!(displaced.addr, 1);
    }
}
