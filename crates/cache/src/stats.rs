//! Hit/miss accounting for an LR-cache.

/// Event counters accumulated by an [`crate::LrCache`]. All counters are
/// monotone; [`CacheStats::reset`] zeroes them (flushes do *not* reset
//  statistics — the paper accumulates across update-induced flushes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes that hit a complete entry with M = LOC.
    pub hits_loc: u64,
    /// Probes that hit a complete entry with M = REM.
    pub hits_rem: u64,
    /// Probes that hit an entry whose W bit is still set (the packet
    /// joins the entry's waiting list).
    pub hits_waiting: u64,
    /// Probes that hit in the victim cache (also counted in the hit
    /// class above once promoted).
    pub victim_hits: u64,
    /// Probes that missed everywhere.
    pub misses: u64,
    /// Entries reserved with the W bit set (early recording).
    pub reservations: u64,
    /// Reservations that failed because every block in the set was
    /// waiting.
    pub reservation_failures: u64,
    /// Replies that completed a waiting entry.
    pub fills: u64,
    /// Complete entries evicted from the main array (before any victim-
    /// cache rescue).
    pub evictions: u64,
    /// Whole-cache flushes (routing-table updates).
    pub flushes: u64,
    /// Entries (complete, waiting, or victim) evicted by prefix-targeted
    /// invalidation — the churn-friendly alternative to a full flush.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total probes.
    pub fn probes(&self) -> u64 {
        self.hits_loc + self.hits_rem + self.hits_waiting + self.misses
    }

    /// Hit rate over complete-entry hits (waiting hits count as hits:
    /// the packet is satisfied without a new FE lookup).
    pub fn hit_rate(&self) -> f64 {
        let probes = self.probes();
        if probes == 0 {
            return 0.0;
        }
        (self.hits_loc + self.hits_rem + self.hits_waiting) as f64 / probes as f64
    }

    /// Zero every counter.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_math() {
        let s = CacheStats {
            hits_loc: 6,
            hits_rem: 2,
            hits_waiting: 2,
            misses: 10,
            ..Default::default()
        };
        assert_eq!(s.probes(), 20);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats() {
        let s = CacheStats::default();
        assert_eq!(s.probes(), 0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats {
            misses: 3,
            flushes: 1,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
