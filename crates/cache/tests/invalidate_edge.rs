//! Edge cases of prefix-targeted invalidation
//! ([`LrCache::invalidate_covered`]) across both address widths: the
//! /0 default route, host routes (/32, /128), waiting-list (W-bit)
//! entries, and victim-cache residents.

use spal_cache::{
    FillOutcome, LrCache, LrCache6, LrCacheConfig, Origin, ProbeResult, ReserveOutcome,
};

fn cfg(blocks: usize, victim: usize) -> LrCacheConfig {
    LrCacheConfig {
        blocks,
        assoc: 4,
        victim_blocks: victim,
        ..Default::default()
    }
}

#[test]
fn default_route_update_invalidates_everything_including_waiters() {
    let mut c: LrCache<u16> = LrCache::new(cfg(64, 8));
    for i in 0..32u32 {
        c.fill(i.wrapping_mul(2654435761), i as u16, Origin::Loc);
    }
    c.reserve(0xDEAD_BEEF);
    c.reserve(0x0000_0001);
    let waiting_before = c.waiting_count();
    assert_eq!(waiting_before, 2);
    // A 0.0.0.0/0 update covers every address: main array, waiting
    // entries and victim residents must all go.
    let dropped = c.invalidate_covered(0, 0);
    assert_eq!(dropped as u64, c.stats().invalidations);
    assert_eq!(c.occupancy(), (0, 0));
    assert_eq!(c.waiting_count(), 0);
    assert_eq!(c.probe(0xDEAD_BEEF), ProbeResult::Miss);
}

#[test]
fn host_route_invalidation_is_surgical() {
    let mut c: LrCache<u16> = LrCache::new(cfg(64, 0));
    // Two addresses in the same /31; a /32 must hit exactly one.
    c.fill(0x0A00_0000, 1, Origin::Loc);
    c.fill(0x0A00_0001, 2, Origin::Rem);
    assert_eq!(c.invalidate_covered(0x0A00_0001, 32), 1);
    assert!(matches!(
        c.probe(0x0A00_0000),
        ProbeResult::Hit { value: 1, .. }
    ));
    assert_eq!(c.probe(0x0A00_0001), ProbeResult::Miss);
}

#[test]
fn waiting_entry_under_prefix_is_dropped_and_refill_demotes_to_insert() {
    let mut c: LrCache<u16> = LrCache::new(cfg(16, 0));
    assert_eq!(c.reserve(0x0A01_0203), ReserveOutcome::Reserved);
    assert_eq!(c.reserve(0xC0A8_0001), ReserveOutcome::Reserved);
    // Only the 10/8 waiter goes; the other keeps its waiting list.
    assert_eq!(c.invalidate_covered(0x0A00_0000, 8), 1);
    assert_eq!(c.probe(0x0A01_0203), ProbeResult::Miss);
    assert_eq!(c.probe(0xC0A8_0001), ProbeResult::HitWaiting);
    // The in-flight reply for the dropped waiter inserts fresh instead
    // of completing a waiting list that no longer exists.
    assert_eq!(c.fill(0x0A01_0203, 7, Origin::Rem), FillOutcome::Inserted);
    assert_eq!(
        c.fill(0xC0A8_0001, 9, Origin::Rem),
        FillOutcome::CompletedWaiting
    );
}

#[test]
fn victim_resident_under_prefix_is_dropped() {
    // Single-set cache: overflowing it pushes the oldest entry into the
    // victim cache, where the invalidation must still find it.
    let mut c: LrCache<u16> = LrCache::new(cfg(4, 8));
    for i in 0..5u32 {
        c.fill(0x0A00_0000 + i * 4, i as u16, Origin::Loc);
    }
    // addr 0x0A00_0000 now lives only in the victim cache.
    assert_eq!(c.invalidate_covered(0x0A00_0000, 30), 1);
    assert_eq!(c.probe(0x0A00_0000), ProbeResult::Miss);
    // The other residents (main array) survive.
    assert!(matches!(c.probe(0x0A00_0008), ProbeResult::Hit { .. }));
}

#[test]
fn v6_targeted_invalidation_covers_main_waiting_and_victim() {
    let doc = |low: u128| 0x2001_0db8_0000_0000_0000_0000_0000_0000u128 | low;
    let other: u128 = 0xfd00_0000_0000_0000_0000_0000_0000_0001;
    // Single set + victim so one 2001:db8 entry is a victim resident.
    let mut c: LrCache6<u16> = LrCache::new(cfg(4, 8));
    for i in 0..5u128 {
        c.fill(doc(i * 4), i as u16, Origin::Loc);
    }
    c.fill(other, 99, Origin::Rem);
    c.reserve(doc(0xFFFF));
    // /32 over 2001:db8::/32 drops the four surviving main-array
    // entries, the victim resident, and the waiter — not the fd00 one.
    let dropped = c.invalidate_covered(doc(0), 32);
    assert_eq!(dropped, 6);
    for i in 0..5u128 {
        assert_eq!(c.probe(doc(i * 4)), ProbeResult::Miss);
    }
    assert_eq!(c.probe(doc(0xFFFF)), ProbeResult::Miss);
    assert!(matches!(c.probe(other), ProbeResult::Hit { value: 99, .. }));
}

#[test]
fn v6_host_route_and_default_route_edges() {
    let a: u128 = 0x2001_0db8_0000_0000_0000_0000_0000_0001;
    let mut c: LrCache6<u16> = LrCache::new(cfg(64, 0));
    c.fill(a, 1, Origin::Loc);
    c.fill(a ^ 1, 2, Origin::Loc);
    // /128 host route: exactly one entry.
    assert_eq!(c.invalidate_covered(a, 128), 1);
    assert_eq!(c.probe(a), ProbeResult::Miss);
    assert!(matches!(c.probe(a ^ 1), ProbeResult::Hit { value: 2, .. }));
    // ::/0 wipes the rest.
    assert_eq!(c.invalidate_covered(0, 0), 1);
    assert_eq!(c.occupancy(), (0, 0));
}

#[test]
#[should_panic(expected = "out of range")]
fn v4_prefix_longer_than_width_rejected() {
    let mut c: LrCache<u16> = LrCache::new(cfg(16, 0));
    c.invalidate_covered(0, 33);
}
