//! Exhaustive interleaving tests for the version-gated cache
//! ([`spal_dataplane::VersionedCache`]): every merge order of a worker's
//! fabric-reply lane with the control plane's invalidation lane is
//! replayed from scratch and checked against an independent oracle.
//!
//! These run in the ordinary test suite (no `--cfg spal_check` needed):
//! the cache is plain data, so "concurrency" here is the *order* in
//! which the worker observes events, which [`for_each_interleaving`]
//! enumerates exhaustively — C(n+m, n) schedules per test.

use spal_cache::{LrCache, LrCacheConfig, Origin, ProbeResult};
use spal_check::interleave::{for_each_interleaving, interleaving_count};
use spal_dataplane::{VersionedCache, VersionedFill};

fn fresh() -> VersionedCache<u16> {
    VersionedCache::new(LrCache::new(LrCacheConfig {
        blocks: 64,
        assoc: 4,
        victim_blocks: 0,
        ..Default::default()
    }))
}

/// One event as the worker observes it, in some schedule order.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Fabric reply for `addr` computed against table version `sent_at`.
    Fill { addr: u32, val: u16, sent_at: u64 },
    /// Prefix-targeted invalidation from a publication at `version`.
    Inval { bits: u32, len: u8, version: u64 },
    /// Full-flush invalidation from a publication at `version`.
    Flush { version: u64 },
}

fn apply(c: &mut VersionedCache<u16>, ev: Ev) {
    match ev {
        Ev::Fill { addr, val, sent_at } => {
            c.fill_versioned(addr, val, Origin::Rem, sent_at);
        }
        Ev::Inval { bits, len, version } => {
            c.apply_invalidation(bits, len, version);
        }
        Ev::Flush { version } => c.apply_flush(version),
    }
}

/// Replay one schedule: `s[i] == 0` takes the next lane-0 event,
/// `1` the next lane-1 event.
fn replay(c: &mut VersionedCache<u16>, s: &[u8], lane0: &[Ev], lane1: &[Ev]) {
    let (mut i, mut j) = (0, 0);
    for &lane in s {
        if lane == 0 {
            apply(c, lane0[i]);
            i += 1;
        } else {
            apply(c, lane1[j]);
            j += 1;
        }
    }
}

/// The classic torn-update race: an old reply (computed against the
/// pre-update table) races the invalidation that obsoletes it and the
/// refreshed reply. Whatever the merge order, the pre-update next hop
/// must never be served from the cache once all events are processed.
#[test]
fn stale_reply_never_cached() {
    let addr = 0x0A00_0001; // inside 10.0.0.0/8
    let lane_worker = [Ev::Fill {
        addr,
        val: 1,
        sent_at: 1,
    }];
    let lane_ctrl = [
        Ev::Inval {
            bits: 0x0A00_0000,
            len: 8,
            version: 2,
        },
        Ev::Fill {
            addr,
            val: 2,
            sent_at: 2,
        },
    ];
    let visited = for_each_interleaving(lane_worker.len(), lane_ctrl.len(), |s| {
        let mut c = fresh();
        replay(&mut c, s, &lane_worker, &lane_ctrl);
        match c.probe(addr) {
            ProbeResult::Hit { value, .. } => {
                assert_ne!(value, 1, "stale next hop served after schedule {s:?}")
            }
            ProbeResult::Miss | ProbeResult::HitWaiting => {}
        }
    });
    assert_eq!(visited, interleaving_count(1, 2));
}

/// Invalidation coverage is exact in every order: replies under the
/// updated prefix never survive, replies outside it (stamped with the
/// post-update version, as a real refreshed reply is) always do.
#[test]
fn invalidation_coverage_is_exact_in_every_order() {
    let covered = [0x0A00_0001u32, 0x0AFF_FFFE];
    let outside = [0x0B00_0001u32, 0xC0A8_0001];
    let lane_worker = [
        Ev::Fill {
            addr: covered[0],
            val: 10,
            sent_at: 1,
        },
        Ev::Fill {
            addr: outside[0],
            val: 20,
            sent_at: 2,
        },
        Ev::Fill {
            addr: covered[1],
            val: 11,
            sent_at: 1,
        },
        Ev::Fill {
            addr: outside[1],
            val: 21,
            sent_at: 2,
        },
    ];
    let lane_ctrl = [Ev::Inval {
        bits: 0x0A00_0000,
        len: 8,
        version: 2,
    }];
    let visited = for_each_interleaving(lane_worker.len(), lane_ctrl.len(), |s| {
        let mut c = fresh();
        replay(&mut c, s, &lane_worker, &lane_ctrl);
        for a in covered {
            assert_eq!(
                c.probe(a),
                ProbeResult::Miss,
                "covered {a:#010x} survived schedule {s:?}"
            );
        }
        for (a, v) in outside.iter().zip([20u16, 21]) {
            assert!(
                matches!(c.probe(*a), ProbeResult::Hit { value, .. } if value == v),
                "outside {a:#010x} lost under schedule {s:?}"
            );
        }
    });
    assert_eq!(visited, interleaving_count(4, 1));
}

/// Full protocol soup vs an independent oracle, exhaustively: 8 worker
/// events × 8 control events = C(16, 8) = 12 870 schedules. The oracle
/// replays the schedule over a flat map with the protocol's rules
/// (stale fill drops the entry, covering invalidation evicts, flush
/// clears, versions are monotone) and the cache must agree exactly —
/// the cache adds set-associativity, LRU and waiting-list machinery the
/// oracle does not have.
#[test]
fn cache_matches_oracle_across_12870_interleavings() {
    // ≤ 4 distinct addresses so capacity eviction is impossible and the
    // oracle's "still cached" claim is exact.
    let a = [0x0A00_0001u32, 0x0A00_0002, 0x0B00_0001, 0xC0A8_0001];
    let lane_worker = [
        Ev::Fill {
            addr: a[0],
            val: 1,
            sent_at: 0,
        },
        Ev::Fill {
            addr: a[1],
            val: 2,
            sent_at: 0,
        },
        Ev::Fill {
            addr: a[2],
            val: 3,
            sent_at: 1,
        },
        Ev::Fill {
            addr: a[0],
            val: 4,
            sent_at: 2,
        },
        Ev::Fill {
            addr: a[3],
            val: 5,
            sent_at: 2,
        },
        Ev::Fill {
            addr: a[1],
            val: 6,
            sent_at: 3,
        },
        Ev::Fill {
            addr: a[2],
            val: 7,
            sent_at: 4,
        },
        Ev::Fill {
            addr: a[3],
            val: 8,
            sent_at: 4,
        },
    ];
    let lane_ctrl = [
        Ev::Inval {
            bits: 0x0A00_0000,
            len: 8,
            version: 1,
        },
        Ev::Inval {
            bits: 0x0A00_0002,
            len: 32,
            version: 2,
        },
        Ev::Flush { version: 3 },
        Ev::Inval {
            bits: 0x0B00_0000,
            len: 8,
            version: 4,
        },
        Ev::Inval {
            bits: 0xC000_0000,
            len: 4,
            version: 4,
        },
        Ev::Inval {
            bits: 0x0A00_0000,
            len: 7,
            version: 5,
        },
        Ev::Inval {
            bits: 0xFF00_0000,
            len: 8,
            version: 5,
        },
        Ev::Inval {
            bits: 0x0000_0000,
            len: 1,
            version: 6,
        },
    ];

    let covered_by =
        |addr: u32, bits: u32, len: u8| len == 0 || (addr ^ bits) >> (32 - len as u32) == 0;
    let visited = for_each_interleaving(lane_worker.len(), lane_ctrl.len(), |s| {
        let mut c = fresh();
        // Independent oracle: flat map + the protocol rules.
        let mut map = std::collections::HashMap::new();
        let mut version = 0u64;
        let (mut i, mut j) = (0, 0);
        for &lane in s {
            let ev = if lane == 0 {
                i += 1;
                lane_worker[i - 1]
            } else {
                j += 1;
                lane_ctrl[j - 1]
            };
            apply(&mut c, ev);
            match ev {
                Ev::Fill { addr, val, sent_at } => {
                    if sent_at >= version {
                        map.insert(addr, val);
                    } else {
                        map.remove(&addr);
                    }
                }
                Ev::Inval {
                    bits,
                    len,
                    version: v,
                } => {
                    map.retain(|&addr, _| !covered_by(addr, bits, len));
                    version = version.max(v);
                }
                Ev::Flush { version: v } => {
                    map.clear();
                    version = version.max(v);
                }
            }
        }
        for addr in a {
            let got = match c.probe(addr) {
                ProbeResult::Hit { value, .. } => Some(value),
                _ => None,
            };
            assert_eq!(
                got,
                map.get(&addr).copied(),
                "cache disagrees with oracle for {addr:#010x} under {s:?}"
            );
        }
    });
    assert_eq!(visited, 12_870);
    assert_eq!(visited, interleaving_count(8, 8));
}

/// The gate itself, stated directly: a fill stamped older than the
/// cache's processed-invalidation version is always reported
/// [`VersionedFill::StaleDropped`] and leaves no entry behind, in every
/// order the version got there.
#[test]
fn fill_versioned_gate_is_order_insensitive() {
    let lane_bumps = [
        Ev::Inval {
            bits: 0xFF00_0000,
            len: 8,
            version: 3,
        },
        Ev::Inval {
            bits: 0xFE00_0000,
            len: 8,
            version: 5,
        },
        Ev::Flush { version: 7 },
    ];
    let lane_noise = [
        Ev::Fill {
            addr: 0x0100_0000,
            val: 1,
            sent_at: 9,
        },
        Ev::Fill {
            addr: 0x0200_0000,
            val: 2,
            sent_at: 9,
        },
        Ev::Fill {
            addr: 0x0300_0000,
            val: 3,
            sent_at: 9,
        },
    ];
    for_each_interleaving(lane_bumps.len(), lane_noise.len(), |s| {
        let mut c = fresh();
        replay(&mut c, s, &lane_bumps, &lane_noise);
        // Whatever interleaved, the version is now 7: a sent_at-6 reply
        // must be refused.
        assert_eq!(c.version(), 7);
        assert_eq!(
            c.fill_versioned(0x0400_0000, 9, Origin::Rem, 6),
            VersionedFill::StaleDropped
        );
        assert_eq!(c.probe(0x0400_0000), ProbeResult::Miss);
        // And a current one accepted.
        assert_eq!(
            c.fill_versioned(0x0400_0000, 9, Origin::Rem, 7),
            VersionedFill::Cached(spal_cache::FillOutcome::Inserted)
        );
    });
}
