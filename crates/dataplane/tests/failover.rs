//! LC failure with online re-partitioning: the remap protocol's edge
//! cases. An LC dies mid-traffic; the control plane re-homes its
//! ROT-partition groups across the survivors and publishes the new map
//! through the RCU snapshot while packets keep flowing. These tests
//! drive the remap under concurrent churn, verify the targeted
//! invalidation of the remapped range, and inject duplicated/stale
//! replies around the remap — zero oracle divergence in every case.

use spal_cache::LrCacheConfig;
use spal_dataplane::{
    run, ChurnConfig, DataplaneConfig, FailoverPlan, FaultPlan, InvalidationMode,
};
use spal_rib::{synth, RoutingTable};
use spal_traffic::{preset, PresetName, Trace, TracePreset};

fn setup(psi: usize, packets_per_worker: usize) -> (RoutingTable, Vec<Trace>) {
    let table = synth::small(31);
    let p = TracePreset {
        distinct: 600,
        ..preset(PresetName::D75)
    };
    let traces = p.generate(&table, psi * packets_per_worker, 13).split(psi);
    (table, traces)
}

fn failover_cfg(psi: usize, packets: usize, deterministic: bool) -> DataplaneConfig {
    DataplaneConfig {
        workers: psi,
        deterministic,
        cache: LrCacheConfig::paper(512),
        failover: Some(FailoverPlan {
            lc: 1,
            after_packets: (packets as u64) * 2 / 5,
        }),
        seed: 17,
        ..Default::default()
    }
}

fn assert_no_divergence(report: &spal_dataplane::DataplaneReport) {
    assert_eq!(
        report.oracle_divergence(),
        0,
        "oracle divergence after remap"
    );
    if let Some(churn) = &report.churn {
        assert_eq!(churn.final_mismatches, 0);
    }
}

/// Completion accounting under a failure: every admitted packet either
/// completed or was lost with the victim, and the victim's in-flight
/// work was re-homed rather than leaked.
fn assert_failure_accounting(report: &spal_dataplane::DataplaneReport, psi: usize, packets: usize) {
    let f = report.failover.as_ref().expect("remap ran");
    assert_eq!(f.dead_lc, 1);
    assert!(f.moved_prefixes > 0, "remap moved nothing");
    let lost: u64 = report.workers.iter().map(|w| w.lost_packets).sum();
    assert!(lost > 0, "the victim lost nothing (died after its trace?)");
    assert_eq!(
        report.total_packets(),
        (psi * packets) as u64 - lost,
        "packets leaked or double-counted across the failure"
    );
}

#[test]
fn deterministic_failover_stays_consistent() {
    let psi = 4;
    let packets = 3_000;
    let (table, traces) = setup(psi, packets);
    let report = run(&table, &traces, &failover_cfg(psi, packets, true));
    assert_no_divergence(&report);
    assert_failure_accounting(&report, psi, packets);
    // Survivors re-routed their in-flight requests to the new homes.
    let rehomed: u64 = report.workers.iter().map(|w| w.rehomed_requests).sum();
    let dead_letters: u64 = report.workers.iter().map(|w| w.dead_letters).sum();
    assert!(
        rehomed + dead_letters > 0,
        "failure at 40% left no in-flight state to migrate"
    );
}

#[test]
fn deterministic_failover_is_reproducible() {
    let psi = 3;
    let packets = 2_000;
    let (table, traces) = setup(psi, packets);
    let a = run(&table, &traces, &failover_cfg(psi, packets, true));
    let b = run(&table, &traces, &failover_cfg(psi, packets, true));
    assert_eq!(a.checksum(), b.checksum());
    assert_eq!(a.total_packets(), b.total_packets());
    let fa = a.failover.as_ref().expect("remap ran");
    let fb = b.failover.as_ref().expect("remap ran");
    assert_eq!(fa.moved_prefixes, fb.moved_prefixes);
    assert_eq!(fa.invalidations_per_lc, fb.invalidations_per_lc);
}

#[test]
fn remap_under_concurrent_churn_stays_consistent() {
    // The hard interleaving: route updates flowing through the log
    // while the remap rewrites the partition map out-of-band. The log
    // must be rebased (remapped prefixes can't be replayed under the
    // old map) and the post-churn oracle must still agree everywhere.
    let psi = 4;
    let packets = 3_000;
    let (table, traces) = setup(psi, packets);
    let mut cfg = failover_cfg(psi, packets, true);
    cfg.churn = Some(ChurnConfig {
        updates: 600,
        updates_per_publication: 30,
        withdraw_fraction: 0.3,
        pace_us: 0,
    });
    let report = run(&table, &traces, &cfg);
    let churn = report.churn.as_ref().expect("churn ran");
    assert_eq!(churn.updates_applied, 600, "remap stalled the churn feed");
    assert_no_divergence(&report);
    assert_failure_accounting(&report, psi, packets);
}

#[test]
fn remap_invalidates_only_the_moved_range() {
    // Targeted mode: survivors evict exactly the remapped prefixes.
    let psi = 4;
    let packets = 3_000;
    let (table, traces) = setup(psi, packets);
    let targeted = run(&table, &traces, &failover_cfg(psi, packets, true));
    let ft = targeted.failover.as_ref().expect("remap ran");
    assert!(ft.targeted, "remap fell back to full flush");
    assert_eq!(
        ft.invalidations_per_lc, ft.moved_prefixes,
        "targeted remap must invalidate exactly the moved prefixes"
    );
    // No whole-cache flush happened anywhere.
    assert_eq!(
        targeted
            .workers
            .iter()
            .map(|w| w.cache.flushes)
            .sum::<u64>(),
        0
    );
    assert_no_divergence(&targeted);

    // Full-flush mode survives the same failure via one flush instead.
    let mut flush_cfg = failover_cfg(psi, packets, true);
    flush_cfg.invalidation = InvalidationMode::FullFlush;
    let flush = run(&table, &traces, &flush_cfg);
    let ff = flush.failover.as_ref().expect("remap ran");
    assert!(!ff.targeted);
    assert!(
        flush.workers.iter().map(|w| w.cache.flushes).sum::<u64>() > 0,
        "full-flush remap never flushed"
    );
    assert_no_divergence(&flush);
}

#[test]
fn duplicate_and_stale_replies_after_remap_do_not_diverge() {
    // Fault injection around the failure: duplicated replies (a remote
    // fill that raced the remap arrives twice), delayed messages
    // released after the victim's purge, and stalled rings. Version
    // gating plus the dead-letter drop at the outbox must keep every
    // completion correct.
    let psi = 4;
    let packets = 3_000;
    let (table, traces) = setup(psi, packets);
    let mut cfg = failover_cfg(psi, packets, true);
    cfg.faults = Some(FaultPlan {
        seed: 0xDEAD_BEEF,
        delay_per_mille: 60,
        drop_per_mille: 15,
        dup_per_mille: 40,
        stall_per_mille: 10,
        forced_publication_per_mille: 5,
        max_delay_iters: 4,
        retransmit_delay_iters: 6,
    });
    cfg.churn = Some(ChurnConfig {
        updates: 400,
        updates_per_publication: 20,
        withdraw_fraction: 0.3,
        pace_us: 0,
    });
    let report = run(&table, &traces, &cfg);
    assert_no_divergence(&report);
    assert_failure_accounting(&report, psi, packets);
    let dups: u64 = report.workers.iter().map(|w| w.duplicate_replies).sum();
    assert!(dups > 0, "fault plan injected no duplicate replies");
}

#[test]
fn vector_and_scalar_failover_match() {
    // The remap path is mode-independent: vector and scalar runs over
    // the same failure schedule complete the same packets to the same
    // checksum.
    let psi = 3;
    let packets = 2_000;
    let (table, traces) = setup(psi, packets);
    let vector = run(&table, &traces, &failover_cfg(psi, packets, true));
    let mut scalar_cfg = failover_cfg(psi, packets, true);
    scalar_cfg.vector = false;
    let scalar = run(&table, &traces, &scalar_cfg);
    assert_eq!(vector.checksum(), scalar.checksum());
    assert_eq!(vector.total_packets(), scalar.total_packets());
    assert_no_divergence(&vector);
    assert_no_divergence(&scalar);
}

#[test]
fn threaded_failover_stays_consistent() {
    let psi = 4;
    let packets = 20_000;
    let (table, traces) = setup(psi, packets);
    let mut cfg = failover_cfg(psi, packets, false);
    cfg.churn = Some(ChurnConfig {
        updates: 400,
        updates_per_publication: 20,
        withdraw_fraction: 0.3,
        pace_us: 50,
    });
    let report = run(&table, &traces, &cfg);
    assert_no_divergence(&report);
    report.failover.as_ref().expect("remap ran");
    let lost: u64 = report.workers.iter().map(|w| w.lost_packets).sum();
    assert_eq!(report.total_packets(), (psi * packets) as u64 - lost);
}
