//! The fault suite: the dataplane under a deterministic, seed-driven
//! adversary that drops (retransmits), delays and duplicates fabric
//! messages, stalls workers mid-batch, and forces snapshot swaps at
//! adversarial schedule points — all while the oracle machinery checks
//! every delivered lookup against the scalar full-table lookup.
//!
//! CI runs this suite with three fixed seeds (11, 42, 1337). A failure
//! replays exactly: the whole run is a function of the config and the
//! plan seed.

use spal_cache::LrCacheConfig;
use spal_dataplane::{run, ChurnConfig, DataplaneConfig, FaultPlan};
use spal_rib::{synth, RoutingTable};
use spal_traffic::{preset, PresetName, Trace, TracePreset};

const SEEDS: [u64; 3] = [11, 42, 1337];

fn setup(psi: usize, packets_per_worker: usize) -> (RoutingTable, Vec<Trace>) {
    let table = synth::small(21);
    let p = TracePreset {
        distinct: 600,
        ..preset(PresetName::D75)
    };
    let traces = p.generate(&table, psi * packets_per_worker, 9).split(psi);
    (table, traces)
}

fn fault_cfg(psi: usize, seed: u64, churn: bool) -> DataplaneConfig {
    DataplaneConfig {
        workers: psi,
        deterministic: true,
        cache: LrCacheConfig::paper(512),
        churn: churn.then_some(ChurnConfig {
            updates: 400,
            updates_per_publication: 25,
            withdraw_fraction: 0.3,
            pace_us: 0,
        }),
        seed: 3,
        faults: Some(FaultPlan::standard(seed)),
        ..Default::default()
    }
}

fn oracle_checksum(table: &RoutingTable, traces: &[Trace]) -> (u64, u64) {
    let mut packets = 0u64;
    let mut sum = 0u64;
    for t in traces {
        for &addr in t.destinations() {
            packets += 1;
            sum = sum.wrapping_add(
                table
                    .longest_match(addr)
                    .map(|e| e.next_hop.0 as u64 + 1)
                    .unwrap_or(0),
            );
        }
    }
    (packets, sum)
}

/// Every fault class must actually have fired, or the run proved
/// nothing.
fn assert_adversary_fired(report: &spal_dataplane::DataplaneReport, seed: u64) {
    let f = report.faults.as_ref().expect("fault plan ran");
    assert_eq!(f.seed, seed);
    assert!(f.delayed > 0, "seed {seed}: no message was delayed");
    assert!(
        f.dropped_retransmitted > 0,
        "seed {seed}: no message was dropped"
    );
    assert!(f.duplicated > 0, "seed {seed}: no message was duplicated");
    assert!(f.stalls > 0, "seed {seed}: no worker ever stalled");
    assert!(
        f.forced_publications > 0,
        "seed {seed}: no forced snapshot swap"
    );
    assert!(
        f.duplicate_replies > 0,
        "seed {seed}: duplicates never reached a receiver as replies"
    );
}

/// Static table: faults reorder and duplicate work but the per-packet
/// results are a pure function of the table, so the checksum must equal
/// the scalar oracle exactly — nothing lost, nothing double-counted.
#[test]
fn static_table_fault_runs_match_oracle_exactly() {
    let (table, traces) = setup(4, 3_000);
    let (packets, sum) = oracle_checksum(&table, &traces);
    for seed in SEEDS {
        let report = run(&table, &traces, &fault_cfg(4, seed, false));
        assert_eq!(report.total_packets(), packets, "seed {seed}");
        assert_eq!(report.checksum(), sum, "seed {seed}: checksum diverged");
        assert_eq!(report.oracle_divergence(), 0, "seed {seed}");
        assert_adversary_fired(&report, seed);
    }
}

/// Churn + faults: delayed/duplicated replies race real invalidations
/// and forced epoch bumps. Spot checks, the control plane's final table
/// samples, and the post-quiesce coherence sweep must all stay clean.
#[test]
fn churn_with_faults_has_zero_oracle_divergence() {
    let (table, traces) = setup(4, 3_000);
    for seed in SEEDS {
        let report = run(&table, &traces, &fault_cfg(4, seed, true));
        assert_eq!(report.total_packets(), 4 * 3_000, "seed {seed}");
        assert_eq!(
            report.oracle_divergence(),
            0,
            "seed {seed}: {}",
            report.fault_summary()
        );
        let churn = report.churn.as_ref().expect("churn ran");
        assert_eq!(churn.updates_applied, 400, "seed {seed}");
        let coh = report.coherence.expect("deterministic run sweeps");
        assert!(coh.entries_checked > 0, "seed {seed}: empty sweep");
        assert_eq!(coh.mismatches, 0, "seed {seed}: stale cache entries");
        assert_adversary_fired(&report, seed);
        // The adversary actually exercised the stale-reply gate or the
        // duplicate filter on top of plain delivery.
        let f = report.faults.as_ref().expect("plan ran");
        assert!(f.delayed + f.duplicated + f.dropped_retransmitted > 100);
    }
}

/// A fault run is a pure function of its seeds: re-running renders a
/// byte-identical canonical report, which is what makes any failure of
/// the two tests above replayable.
#[test]
fn fault_runs_replay_deterministically() {
    let (table, traces) = setup(2, 1_500);
    let a = run(&table, &traces, &fault_cfg(2, 42, true));
    let b = run(&table, &traces, &fault_cfg(2, 42, true));
    assert_eq!(a.canonical_json(), b.canonical_json());
    // And a different adversary seed gives a genuinely different run.
    let c = run(&table, &traces, &fault_cfg(2, 43, true));
    let (fa, fc) = (a.faults.as_ref().unwrap(), c.faults.as_ref().unwrap());
    assert_ne!(
        (fa.delayed, fa.duplicated, fa.stalls),
        (fc.delayed, fc.duplicated, fc.stalls),
        "seeds 42 and 43 produced the same fault trace"
    );
}

/// Batch-message faults: the default (vector-mode) configs above
/// already run the adversary against coalesced messages, but this test
/// makes the coverage explicit — the runs must actually put
/// `BatchRequest`/`BatchReply` messages on the wire, the injector must
/// drop/delay/duplicate them as whole units (a dropped batch reply
/// stalls up to 32 addresses until the retransmit lands; a duplicated
/// one must be recognized per address), and the oracle and coherence
/// sweeps must stay clean through all of it.
#[test]
fn batch_messages_face_the_adversary_with_zero_divergence() {
    let (table, traces) = setup(4, 3_000);
    for seed in SEEDS {
        let report = run(&table, &traces, &fault_cfg(4, seed, true));
        let batch_requests: u64 = report.workers.iter().map(|w| w.batch_requests_sent).sum();
        let batch_replies: u64 = report.workers.iter().map(|w| w.batch_replies_sent).sum();
        assert!(
            batch_requests > 0,
            "seed {seed}: no coalesced request ever sent — batch faults untested"
        );
        assert!(
            batch_replies > 0,
            "seed {seed}: no coalesced reply ever sent — batch faults untested"
        );
        assert_eq!(
            report.oracle_divergence(),
            0,
            "seed {seed}: {}",
            report.fault_summary()
        );
        let coh = report.coherence.expect("deterministic run sweeps");
        assert_eq!(coh.mismatches, 0, "seed {seed}: stale cache entries");
        assert_adversary_fired(&report, seed);
    }
}

/// Control arm: the same adversary against the scalar (non-vector)
/// loop. Proves the fault machinery itself is mode-agnostic and pins
/// the scalar path's resilience now that vector is the default.
#[test]
fn scalar_mode_survives_the_same_adversary() {
    let (table, traces) = setup(4, 3_000);
    for seed in SEEDS {
        let mut cfg = fault_cfg(4, seed, true);
        cfg.vector = false;
        let report = run(&table, &traces, &cfg);
        assert!(report
            .workers
            .iter()
            .all(|w| w.batch_requests_sent == 0 && w.batch_replies_sent == 0));
        assert_eq!(
            report.oracle_divergence(),
            0,
            "seed {seed}: {}",
            report.fault_summary()
        );
        assert_adversary_fired(&report, seed);
    }
}

/// A stall freezes a worker mid-vector: events already coalesced but
/// not yet flushed must survive the pause and go out (in order) on the
/// next unstalled iteration. With stalls cranked up an order of
/// magnitude beyond the standard plan, every packet must still
/// complete exactly once.
#[test]
fn stall_heavy_plan_holds_vectors_across_iterations() {
    let (table, traces) = setup(4, 2_000);
    let (packets, sum) = oracle_checksum(&table, &traces);
    let mut plan = FaultPlan::standard(77);
    plan.stall_per_mille = 500; // every other iteration pauses
    let mut cfg = fault_cfg(4, 77, false);
    cfg.faults = Some(plan);
    let report = run(&table, &traces, &cfg);
    let f = report.faults.as_ref().expect("plan ran");
    assert!(f.stalls > 100, "stall knob had no effect: {}", f.stalls);
    assert_eq!(report.total_packets(), packets);
    assert_eq!(report.checksum(), sum, "a held vector was lost or replayed");
    assert_eq!(report.oracle_divergence(), 0);
}

/// Full-flush invalidation mode survives the same adversary.
#[test]
fn full_flush_mode_survives_faults() {
    use spal_dataplane::InvalidationMode;
    let (table, traces) = setup(2, 2_000);
    let mut cfg = fault_cfg(2, 1337, true);
    cfg.invalidation = InvalidationMode::FullFlush;
    let report = run(&table, &traces, &cfg);
    assert_eq!(report.oracle_divergence(), 0, "{}", report.fault_summary());
    let flushes: u64 = report.workers.iter().map(|w| w.cache.flushes).sum();
    assert!(flushes > 0, "full-flush mode never flushed");
}
