//! Parity between the concurrent dataplane and the discrete-event
//! simulator on the metrics that do not depend on timing.
//!
//! The two execution models schedule work differently — the simulator
//! interleaves packets at cycle granularity with a 40-cycle FE service
//! time, while the dataplane admits fixed-size batches — so waiting-hit
//! counts and LOC/REM splits drift slightly. What must agree:
//!
//! * every packet resolves to the same next hop (checksums equal);
//! * the aggregate cache hit rate, and the REM share of complete hits,
//!   land within a small tolerance (batching changes *when* duplicate
//!   addresses coalesce, not *whether* the cache works).
//!
//! Measured divergence (ψ ∈ {1, 4, 8}, several seeds): hit rate agrees
//! to < 0.001 absolute, REM share to < 0.005. The bounds below leave
//! ~10× headroom over that for future cache/engine tweaks.

use spal_cache::LrCacheConfig;
use spal_dataplane::{run, DataplaneConfig};
use spal_rib::synth;
use spal_sim::{RouterSim, SimConfig};
use spal_traffic::{preset, PresetName, TracePreset};

const HIT_RATE_TOL: f64 = 0.01;
const REM_SHARE_TOL: f64 = 0.03;

fn parity_case(psi: usize, seed: u64) -> (f64, f64, f64, f64) {
    let table = synth::small(17);
    let packets_per_lc = 4_000;
    let p = TracePreset {
        distinct: 500,
        ..preset(PresetName::D75)
    };
    let traces = p.generate(&table, psi * packets_per_lc, seed).split(psi);
    let cache = LrCacheConfig::paper(1024);

    let sim = RouterSim::new(
        &table,
        &traces,
        SimConfig {
            psi,
            packets_per_lc,
            cache: cache.clone(),
            seed,
            ..Default::default()
        },
    )
    .run();

    let dp = run(
        &table,
        &traces,
        &DataplaneConfig {
            workers: psi,
            deterministic: true,
            cache,
            batch: 8, // ≈ packets arriving during one 40-cycle FE service
            seed,
            ..Default::default()
        },
    );

    let sim_rem_share = {
        let loc: u64 = sim.per_lc.iter().map(|l| l.cache.hits_loc).sum();
        let rem: u64 = sim.per_lc.iter().map(|l| l.cache.hits_rem).sum();
        if loc + rem == 0 {
            0.0
        } else {
            rem as f64 / (loc + rem) as f64
        }
    };
    (sim.hit_rate(), dp.hit_rate(), sim_rem_share, dp.rem_share())
}

#[test]
fn single_worker_hit_rate_matches_sim() {
    let (sim_hr, dp_hr, _, _) = parity_case(1, 2);
    eprintln!("psi=1: sim hit rate {sim_hr:.4}, dataplane {dp_hr:.4}");
    assert!(
        (sim_hr - dp_hr).abs() < HIT_RATE_TOL,
        "hit-rate divergence: sim {sim_hr:.4} vs dataplane {dp_hr:.4}"
    );
}

#[test]
fn multi_worker_hit_rate_and_rem_share_match_sim() {
    for (psi, seed) in [(4usize, 3u64), (8, 4)] {
        let (sim_hr, dp_hr, sim_rem, dp_rem) = parity_case(psi, seed);
        eprintln!(
            "psi={psi}: hit rate sim {sim_hr:.4} dp {dp_hr:.4} | REM share sim {sim_rem:.4} dp {dp_rem:.4}"
        );
        assert!(
            (sim_hr - dp_hr).abs() < HIT_RATE_TOL,
            "psi={psi} hit-rate divergence: sim {sim_hr:.4} vs dataplane {dp_hr:.4}"
        );
        assert!(
            (sim_rem - dp_rem).abs() < REM_SHARE_TOL,
            "psi={psi} REM-share divergence: sim {sim_rem:.4} vs dataplane {dp_rem:.4}"
        );
    }
}
