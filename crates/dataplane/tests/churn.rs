//! Dataplane correctness under BGP churn: RCU publication, shadow
//! rebuild vs incremental apply, and targeted vs full-flush cache
//! invalidation.

use spal_cache::LrCacheConfig;
use spal_core::LpmAlgorithm;
use spal_dataplane::{run, ChurnConfig, DataplaneConfig, InvalidationMode};
use spal_rib::{synth, RoutingTable};
use spal_traffic::{preset, PresetName, Trace, TracePreset};

fn setup(psi: usize, packets_per_worker: usize) -> (RoutingTable, Vec<Trace>) {
    let table = synth::small(21);
    let p = TracePreset {
        distinct: 600,
        ..preset(PresetName::D75)
    };
    let traces = p.generate(&table, psi * packets_per_worker, 9).split(psi);
    (table, traces)
}

fn churn_cfg(psi: usize, deterministic: bool) -> DataplaneConfig {
    DataplaneConfig {
        workers: psi,
        deterministic,
        cache: LrCacheConfig::paper(512),
        churn: Some(ChurnConfig {
            updates: 600,
            updates_per_publication: 30,
            withdraw_fraction: 0.3,
            pace_us: 50,
        }),
        seed: 3,
        ..Default::default()
    }
}

#[test]
fn deterministic_churn_stays_consistent() {
    let (table, traces) = setup(4, 3_000);
    let report = run(&table, &traces, &churn_cfg(4, true));
    let churn = report.churn.as_ref().expect("churn ran");
    assert_eq!(churn.updates_applied, 600);
    assert!(
        churn.publications >= 20,
        "publications: {}",
        churn.publications
    );
    assert_eq!(
        churn.final_mismatches, 0,
        "published table diverged from RIB"
    );
    assert!(churn.final_checks >= 1_000);
    assert_eq!(report.spot_check_mismatches(), 0);
    assert_eq!(report.total_packets(), 4 * 3_000);
    // Targeted mode actually evicted covered entries somewhere.
    let invalidations: u64 = report.workers.iter().map(|w| w.cache.invalidations).sum();
    assert!(invalidations > 0, "no targeted invalidations happened");
}

#[test]
fn deterministic_churn_is_reproducible() {
    let (table, traces) = setup(2, 1_500);
    let a = run(&table, &traces, &churn_cfg(2, true));
    let b = run(&table, &traces, &churn_cfg(2, true));
    assert_eq!(a.checksum(), b.checksum());
    for (wa, wb) in a.workers.iter().zip(&b.workers) {
        assert_eq!(wa.cache, wb.cache, "lc {} cache stats differ", wa.lc);
        assert_eq!(wa.stale_replies, wb.stale_replies);
    }
}

#[test]
fn full_flush_and_targeted_invalidation_both_stay_consistent() {
    let (table, traces) = setup(4, 3_000);
    let mut flush_cfg = churn_cfg(4, true);
    flush_cfg.invalidation = InvalidationMode::FullFlush;
    let flush = run(&table, &traces, &flush_cfg);
    let targeted = run(&table, &traces, &churn_cfg(4, true));

    for r in [&flush, &targeted] {
        let churn = r.churn.as_ref().expect("churn ran");
        assert_eq!(churn.final_mismatches, 0);
        assert_eq!(r.spot_check_mismatches(), 0);
    }
    let flushes: u64 = flush.workers.iter().map(|w| w.cache.flushes).sum();
    assert!(flushes > 0, "full-flush mode never flushed");
    assert_eq!(
        targeted
            .workers
            .iter()
            .map(|w| w.cache.flushes)
            .sum::<u64>(),
        0,
        "targeted mode must not whole-cache flush"
    );
    // Keeping uncovered entries across publications can only help.
    assert!(
        targeted.hit_rate() >= flush.hit_rate(),
        "targeted {} < full-flush {}",
        targeted.hit_rate(),
        flush.hit_rate()
    );
}

#[test]
fn static_engine_churn_uses_shadow_rebuild() {
    // Lulea does not support incremental updates: every publication
    // must rebuild the affected partitions and still end consistent.
    let (table, traces) = setup(2, 1_500);
    let mut cfg = churn_cfg(2, true);
    cfg.algorithm = LpmAlgorithm::Lulea;
    cfg.churn = Some(ChurnConfig {
        updates: 120,
        updates_per_publication: 30,
        withdraw_fraction: 0.3,
        pace_us: 0,
    });
    let report = run(&table, &traces, &cfg);
    let churn = report.churn.as_ref().expect("churn ran");
    assert_eq!(churn.updates_applied, 120);
    assert_eq!(churn.final_mismatches, 0);
    assert_eq!(report.spot_check_mismatches(), 0);
}

#[test]
fn threaded_churn_stays_consistent() {
    let (table, traces) = setup(4, 4_000);
    let report = run(&table, &traces, &churn_cfg(4, false));
    let churn = report.churn.as_ref().expect("churn ran");
    assert_eq!(churn.final_mismatches, 0);
    assert_eq!(report.spot_check_mismatches(), 0);
    assert_eq!(report.total_packets(), 4 * 4_000);
    assert!(churn.publications > 0);
    assert!(churn.apply_us.mean_us() > 0.0);
}
