//! Golden-report regression: one fixed deterministic run (churn +
//! faults on) rendered through [`DataplaneReport::canonical_json`] and
//! pinned byte-for-byte against a checked-in file. Any change to the
//! schedule, the fault stream, the cache policy, or the report shape
//! shows up as a diff here before it shows up as a mystery elsewhere.
//!
//! To re-bless after an *intentional* change:
//!
//! ```text
//! SPAL_BLESS=1 cargo test -p spal-dataplane --test golden_report
//! ```
//!
//! Re-bless history: the vector-mode dataplane (coalesced batch
//! messages, default on) changed the *number of fabric messages* this
//! faulted run sends, and the fault injector's RNG advances per
//! message — so the same plan seed now lands delays/drops/duplicates
//! on different messages and the pinned counters shifted. The
//! per-address semantics are unchanged: the faultless equivalence test
//! (`vector_and_scalar_canonical_reports_match` in `runtime.rs`)
//! proves scalar and vector runs render byte-identical canonical
//! reports, and the fault suite still asserts zero oracle divergence
//! in both modes.

use spal_cache::LrCacheConfig;
use spal_dataplane::{run, ChurnConfig, DataplaneConfig, FaultPlan};
use spal_rib::synth;
use spal_traffic::{preset, PresetName, TracePreset};

#[test]
fn canonical_report_matches_golden_file() {
    let table = synth::small(21);
    let traces = TracePreset {
        distinct: 600,
        ..preset(PresetName::D75)
    }
    .generate(&table, 3 * 2_000, 9)
    .split(3);
    let cfg = DataplaneConfig {
        workers: 3,
        deterministic: true,
        cache: LrCacheConfig::paper(512),
        churn: Some(ChurnConfig {
            updates: 200,
            updates_per_publication: 25,
            withdraw_fraction: 0.3,
            pace_us: 0,
        }),
        seed: 3,
        faults: Some(FaultPlan::standard(42)),
        ..Default::default()
    };
    let got = run(&table, &traces, &cfg).canonical_json();

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/dataplane_report.json"
    );
    if std::env::var_os("SPAL_BLESS").is_some() {
        std::fs::write(path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing — run once with SPAL_BLESS=1 to create it");
    assert_eq!(
        got, want,
        "canonical report drifted from {path}; if the change is \
         intentional, re-bless with SPAL_BLESS=1"
    );
}
