//! Deterministic, seed-driven fault injection for the dataplane fabric.
//!
//! The runtime's correctness argument is that the version-stamped
//! reply/invalidation protocol tolerates a lossy, reordering fabric and
//! workers stalling at arbitrary points relative to snapshot
//! publications. This module makes that adversary concrete: a
//! [`FaultPlan`] derives one [`FaultInjector`] per worker (seeded from
//! the plan seed and the worker's LC index, so a run replays exactly
//! from its seed) which
//!
//! * **delays** outbound messages a bounded number of iterations,
//! * **drops** messages — modelled as a retransmit after a much longer
//!   delay, the way a real fabric's link-level retry recovers a lost
//!   cell, so every lookup still completes and the oracle checksum
//!   stays exact,
//! * **duplicates** messages (the receiver must be idempotent), and
//! * **stalls** the worker mid-batch: probes, reservations and parked
//!   waiters from the admitted batch are held across (possibly) a
//!   snapshot publication before the FE flush runs.
//!
//! Forced adversarial snapshot swaps are the control-plane half of the
//! plan and are rolled by the deterministic scheduler itself (see
//! `runtime::run_deterministic`), not per worker.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spal_fabric::FabricMsg;
use std::collections::VecDeque;

/// Fault intensities, all per-message (or per-iteration) probabilities
/// in permille. Deterministic for a given `seed`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed for every injector derived from this plan.
    pub seed: u64,
    /// ‰ of messages held back 1..=`max_delay_iters` iterations.
    pub delay_per_mille: u16,
    /// ‰ of messages "lost" and retransmitted after
    /// `retransmit_delay_iters` iterations.
    pub drop_per_mille: u16,
    /// ‰ of messages delivered twice.
    pub dup_per_mille: u16,
    /// ‰ chance per iteration that a worker stalls mid-batch.
    pub stall_per_mille: u16,
    /// ‰ chance per deterministic round of a forced (no-op) snapshot
    /// publication at that adversarial point.
    pub forced_publication_per_mille: u16,
    /// Upper bound on ordinary delays, in sender iterations.
    pub max_delay_iters: u64,
    /// Retransmit latency for "dropped" messages, in sender iterations.
    pub retransmit_delay_iters: u64,
}

impl FaultPlan {
    /// The standard adversary used by the fault suite and
    /// `spal dataplane --faults <seed>`: every fault class on at once,
    /// intense enough that a few thousand packets see hundreds of
    /// faulted messages.
    pub fn standard(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_per_mille: 60,
            drop_per_mille: 25,
            dup_per_mille: 40,
            stall_per_mille: 80,
            forced_publication_per_mille: 20,
            max_delay_iters: 12,
            retransmit_delay_iters: 40,
        }
    }
}

/// Per-worker fault counters, folded into the worker's report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages delivered late (ordinary delay).
    pub delayed: u64,
    /// Messages "lost" and recovered by delayed retransmit.
    pub dropped_retransmitted: u64,
    /// Extra copies delivered by duplication.
    pub duplicated: u64,
    /// Iterations on which the worker stalled mid-batch.
    pub stalls: u64,
}

/// One worker's deterministic fault source.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SmallRng,
    /// Sender-side iteration counter (advanced once per outbox pass).
    now: u64,
    /// Held-back messages with their release iteration.
    delayed: Vec<(u64, FabricMsg)>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Derive worker `lc`'s injector from the plan.
    pub fn new(plan: &FaultPlan, lc: usize) -> Self {
        let seed = plan
            .seed
            .wrapping_add((lc as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        FaultInjector {
            plan: plan.clone(),
            rng: SmallRng::seed_from_u64(seed),
            now: 0,
            delayed: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Roll the per-iteration stall. A stalled worker still drains its
    /// rings and admits its batch, but neither flushes its FE queue nor
    /// its outbox this iteration.
    pub fn roll_stall(&mut self) -> bool {
        let stalled = self.rng.gen_range(0u16..1000) < self.plan.stall_per_mille;
        if stalled {
            self.stats.stalls += 1;
        }
        stalled
    }

    /// Pass the worker's queued messages through the adversary:
    /// releases any held-back message that has come due, then drops,
    /// delays, duplicates, or passes each new message. Everything
    /// emitted into `out` goes on the wire this iteration.
    pub fn filter(&mut self, queued: VecDeque<FabricMsg>, out: &mut VecDeque<FabricMsg>) {
        self.now += 1;
        let now = self.now;
        // Release due messages first (they have waited longest); order
        // among them follows insertion, keeping replay deterministic.
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                out.push_back(self.delayed.remove(i).1);
            } else {
                i += 1;
            }
        }
        for msg in queued {
            let roll = self.rng.gen_range(0u16..1000);
            let p = &self.plan;
            if roll < p.drop_per_mille {
                // "Lost": the fabric's retry recovers it much later.
                self.stats.dropped_retransmitted += 1;
                self.delayed.push((now + p.retransmit_delay_iters, msg));
            } else if roll < p.drop_per_mille + p.delay_per_mille {
                self.stats.delayed += 1;
                let d = self.rng.gen_range(1..=p.max_delay_iters.max(1));
                self.delayed.push((now + d, msg));
            } else if roll < p.drop_per_mille + p.delay_per_mille + p.dup_per_mille {
                self.stats.duplicated += 1;
                out.push_back(msg);
                out.push_back(msg);
            } else {
                out.push_back(msg);
            }
        }
    }

    /// Messages currently held back. A worker holding any is not done:
    /// every delayed message is load-bearing (drops are retransmits),
    /// so quiescence requires the queue to drain.
    pub fn pending(&self) -> usize {
        self.delayed.len()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_fabric::MsgKind;

    fn msg(addr: u32) -> FabricMsg {
        FabricMsg {
            kind: MsgKind::Request,
            src: 0,
            dst: 1,
            addr,
            packet_id: 0,
            sent_at: 0,
        }
    }

    /// Nothing is ever lost: across any number of iterations, every
    /// message put in comes out exactly once (plus duplicates).
    #[test]
    fn conservation_under_faults() {
        let mut inj = FaultInjector::new(&FaultPlan::standard(7), 0);
        let mut seen = vec![0u32; 500];
        let mut out = VecDeque::new();
        for a in 0..500u32 {
            let mut q = VecDeque::new();
            q.push_back(msg(a));
            inj.filter(q, &mut out);
            for m in out.drain(..) {
                seen[m.addr as usize] += 1;
            }
        }
        // Drain the tail: empty iterations release what is still held.
        while inj.pending() > 0 {
            inj.filter(VecDeque::new(), &mut out);
            for m in out.drain(..) {
                seen[m.addr as usize] += 1;
            }
        }
        let s = inj.stats();
        assert!(s.delayed > 0 && s.dropped_retransmitted > 0 && s.duplicated > 0);
        let dups = seen.iter().filter(|&&n| n == 2).count() as u64;
        assert_eq!(dups, s.duplicated);
        assert!(seen.iter().all(|&n| n == 1 || n == 2), "message lost");
    }

    /// Same seed, same LC → identical decisions; different LC → a
    /// different stream.
    #[test]
    fn injectors_replay_from_seed() {
        let run = |lc: usize| {
            let mut inj = FaultInjector::new(&FaultPlan::standard(42), lc);
            let mut trace = Vec::new();
            let mut out = VecDeque::new();
            for a in 0..200u32 {
                let mut q = VecDeque::new();
                q.push_back(msg(a));
                inj.filter(q, &mut out);
                trace.push(out.drain(..).map(|m| m.addr).collect::<Vec<_>>());
                trace.push(vec![inj.roll_stall() as u32]);
            }
            (trace, inj.stats())
        };
        let (a1, s1) = run(0);
        let (a2, s2) = run(0);
        let (b, _) = run(1);
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
        assert_ne!(a1, b);
    }
}
