//! Epoch-based RCU-style table publication.
//!
//! The control plane publishes immutable forwarding-table snapshots;
//! LC workers read them without ever blocking the lookup path. The
//! scheme is quiescent-state-based reclamation (QSBR) with an explicit
//! grace period on the writer side:
//!
//! * a single `AtomicPtr` holds the current snapshot; readers [`pin`]
//!   it for the duration of one processing iteration and drop the pin
//!   between iterations (their quiescent state);
//! * a global epoch counter is bumped on every publication; each reader
//!   owns one announcement slot that either holds [`IDLE`] (not
//!   reading) or the epoch it observed when it pinned;
//! * [`EpochWriter::publish`] swaps the pointer, bumps the epoch to
//!   `target`, then spins until every slot is `IDLE` or `>= target` —
//!   at which point no reader can still hold the old pointer — and
//!   returns the old snapshot **by value**, so the caller can recycle
//!   it as the next shadow copy (the ping-pong scheme the dataplane
//!   control plane uses; no `Clone` bound on the snapshot needed).
//!
//! Memory ordering: both the reader's `slot.store(epoch)` →
//! `current.load()` sequence and the writer's `current.swap()` →
//! `slot.load()` scan need store→load ordering (a Dekker-style
//! handshake), which `Release`/`Acquire` alone does not give. All four
//! accesses are therefore `SeqCst`. The two safe interleavings:
//!
//! * the writer's scan observes the reader's slot — the slot holds an
//!   epoch `< target`, so the writer waits until the reader unpins;
//! * the scan misses the slot store — then, by the `SeqCst` total
//!   order, the reader's subsequent pointer load observes the writer's
//!   swap and returns the *new* snapshot, which is not being reclaimed
//!   (and the reader's stale slot epoch only makes the *next*
//!   publication conservatively wait for it).

use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

use spal_check::sync::{AtomicPtr, AtomicU64, Ordering};

/// Slot value meaning "this reader is between pins".
const IDLE: u64 = u64::MAX;

struct Shared<T> {
    current: AtomicPtr<T>,
    epoch: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // The writer owns every snapshot it ever swapped out; the one
        // still published is freed here, when the last handle goes.
        let p = *self.current.get_mut();
        if !p.is_null() {
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// Writer half: publishes snapshots and reclaims the previous one.
pub struct EpochWriter<T> {
    shared: Arc<Shared<T>>,
}

/// Reader half: pins the current snapshot for one processing iteration.
pub struct EpochReader<T> {
    shared: Arc<Shared<T>>,
    slot: usize,
}

/// A pinned snapshot. Dropping it marks the reader quiescent again;
/// hold it no longer than one processing iteration, or publication
/// stalls.
pub struct Pinned<'a, T> {
    ptr: *const T,
    slot: &'a AtomicU64,
    _not_sync: PhantomData<*const ()>,
}

impl<T> Deref for Pinned<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the slot announcement below (see `pin`) keeps the
        // writer from reclaiming this snapshot while the pin lives.
        unsafe { &*self.ptr }
    }
}

impl<T> Drop for Pinned<'_, T> {
    fn drop(&mut self) {
        self.slot.store(IDLE, Ordering::SeqCst);
    }
}

/// Create an epoch-published table with `readers` reader handles.
pub fn epoch_table<T: Send + Sync>(
    initial: Box<T>,
    readers: usize,
) -> (EpochWriter<T>, Vec<EpochReader<T>>) {
    let shared = Arc::new(Shared {
        current: AtomicPtr::new(Box::into_raw(initial)),
        epoch: AtomicU64::new(0),
        slots: (0..readers).map(|_| AtomicU64::new(IDLE)).collect(),
    });
    let readers = (0..readers)
        .map(|slot| EpochReader {
            shared: Arc::clone(&shared),
            slot,
        })
        .collect();
    (EpochWriter { shared }, readers)
}

/// Wait until every reader slot is `IDLE` or has observed `target`.
fn grace<T>(shared: &Shared<T>, target: u64) {
    // Seeded-bug hook: skipping the grace period reclaims the old
    // snapshot while a reader may still hold it pinned — the
    // model-checked harness must observe the violation.
    if spal_check::bug_enabled("epoch-skip-grace") {
        return;
    }
    for slot in shared.slots.iter() {
        let mut spins = 0u32;
        loop {
            let s = slot.load(Ordering::SeqCst);
            if s == IDLE || s >= target {
                break;
            }
            spins += 1;
            if spins < 128 {
                spal_check::sync::spin_loop();
            } else {
                // Single-core machines need the reader scheduled
                // to reach its quiescent state.
                spal_check::sync::yield_now();
            }
        }
    }
}

/// A snapshot swapped out by [`EpochWriter::publish_deferred`] whose
/// grace period has not been waited out yet. Call
/// [`Deferred::into_inner`] to wait and take the snapshot back for
/// recycling; merely dropping it also waits (so it can never free a
/// still-pinned snapshot), but discards the allocation.
pub struct Deferred<T> {
    shared: Arc<Shared<T>>,
    old: *mut T,
    target: u64,
}

// SAFETY: `old` is owned (no reader will touch it after the grace
// period this type enforces), so the token may migrate threads whenever
// the snapshot itself may.
unsafe impl<T: Send> Send for Deferred<T> {}

impl<T> Deferred<T> {
    /// Wait out the grace period (if still running) and return the
    /// now-unreferenced snapshot for recycling. The wait typically
    /// costs nothing by the time the control plane comes back with its
    /// next batch — readers repin every iteration — which is the point:
    /// the wait moves off the publication's critical path.
    pub fn into_inner(mut self) -> Box<T> {
        grace(&self.shared, self.target);
        let old = std::mem::replace(&mut self.old, std::ptr::null_mut());
        // SAFETY: every reader has been idle or re-pinned since the
        // swap, so no reference into `old` survives; nulling the field
        // keeps `Drop` from double-freeing.
        unsafe { Box::from_raw(old) }
    }
}

impl<T> Drop for Deferred<T> {
    fn drop(&mut self) {
        if !self.old.is_null() {
            grace(&self.shared, self.target);
            // SAFETY: grace period over, see `into_inner`.
            drop(unsafe { Box::from_raw(self.old) });
        }
    }
}

impl<T> EpochWriter<T> {
    /// Swap in `next`, wait out the grace period, and return the
    /// now-unreferenced previous snapshot for recycling.
    pub fn publish(&mut self, next: Box<T>) -> Box<T> {
        self.publish_deferred(next).into_inner()
    }

    /// Swap in `next` and return immediately, deferring the grace-period
    /// wait to the returned token. Readers see the new snapshot from the
    /// swap onward; the caller resolves the token (usually right before
    /// it next needs the shadow copy) to reclaim the old snapshot. This
    /// takes the reader-scheduling wait out of the publication latency —
    /// on an oversubscribed host the grace period costs milliseconds,
    /// none of which the route-update path needs to absorb.
    pub fn publish_deferred(&mut self, next: Box<T>) -> Deferred<T> {
        let old = self
            .shared
            .current
            .swap(Box::into_raw(next), Ordering::SeqCst);
        let target = self.shared.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        Deferred {
            shared: Arc::clone(&self.shared),
            old,
            target,
        }
    }

    /// The currently published snapshot. `&mut self` on [`publish`]
    /// means it cannot be reclaimed while this borrow lives.
    pub fn peek(&self) -> &T {
        unsafe { &*self.shared.current.load(Ordering::SeqCst) }
    }

    /// Number of publications so far.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }
}

impl<T> EpochReader<T> {
    /// Pin the current snapshot. `&mut self` forbids nested pins, which
    /// would overwrite this reader's announcement slot and could let
    /// the writer reclaim the outer snapshot early.
    pub fn pin(&mut self) -> Pinned<'_, T> {
        let slot = &self.shared.slots[self.slot];
        slot.store(self.shared.epoch.load(Ordering::SeqCst), Ordering::SeqCst);
        let ptr = self.shared.current.load(Ordering::SeqCst);
        Pinned {
            ptr,
            slot,
            _not_sync: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_returns_previous_snapshot() {
        let (mut w, mut readers) = epoch_table(Box::new(1u64), 2);
        assert_eq!(*w.peek(), 1);
        let old = w.publish(Box::new(2));
        assert_eq!(*old, 1);
        assert_eq!(*w.peek(), 2);
        assert_eq!(w.epoch(), 1);
        let r = &mut readers[0];
        assert_eq!(*r.pin(), 2);
    }

    #[test]
    fn recycled_snapshot_ping_pongs() {
        let (mut w, _readers) = epoch_table::<Vec<u32>>(Box::new(vec![0]), 1);
        let mut shadow = Box::new(vec![0]);
        for i in 1..5u32 {
            shadow.push(i);
            shadow = w.publish(shadow);
            shadow.push(i); // catch the lagging copy up
        }
        assert_eq!(w.peek().len(), 5);
        assert_eq!(shadow.len(), 5);
    }

    #[test]
    fn readers_never_observe_torn_snapshots() {
        // The snapshot invariant: both halves sum to the generation.
        // A use-after-free or torn read would break it (and Miri-style
        // reasoning aside, this exercises the grace period hard).
        const GENERATIONS: u64 = 2_000;
        let (mut w, readers) = epoch_table(Box::new((0u64, 0u64)), 3);
        let handles: Vec<_> = readers
            .into_iter()
            .map(|mut r| {
                std::thread::spawn(move || loop {
                    let pin = r.pin();
                    let (a, b) = *pin;
                    assert_eq!(a, b, "torn snapshot: {a} vs {b}");
                    if a == GENERATIONS {
                        return;
                    }
                    drop(pin);
                    std::thread::yield_now();
                })
            })
            .collect();
        let mut shadow = Box::new((0u64, 0u64));
        for gen in 1..=GENERATIONS {
            *shadow = (gen, gen);
            shadow = w.publish(shadow);
        }
        // Readers lag by design; publish the final value into both
        // copies so every reader terminates.
        *shadow = (GENERATIONS, GENERATIONS);
        w.publish(shadow);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn drop_frees_current_without_readers() {
        let (w, readers) = epoch_table(Box::new(vec![1u8; 64]), 4);
        drop(readers);
        drop(w); // Shared::drop reclaims the published snapshot
    }

    #[test]
    fn deferred_publication_reclaims_after_wait() {
        let (mut w, mut readers) = epoch_table(Box::new(10u64), 1);
        let pending = w.publish_deferred(Box::new(20));
        // Readers already see the new snapshot before the wait resolves.
        assert_eq!(*readers[0].pin(), 20);
        assert_eq!(*pending.into_inner(), 10);
        // Dropping a token (without taking the snapshot back) must also
        // be safe: grace has clearly elapsed here.
        let pending = w.publish_deferred(Box::new(30));
        drop(pending);
        assert_eq!(*w.peek(), 30);
    }

    #[test]
    fn deferred_wait_blocks_until_reader_unpins() {
        let (mut w, readers) = epoch_table(Box::new(0u64), 1);
        let mut r = readers.into_iter().next().unwrap();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let b2 = std::sync::Arc::clone(&barrier);
        let h = std::thread::spawn(move || {
            let pin = r.pin();
            b2.wait(); // writer may now publish
            let v = *pin;
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(pin);
            v
        });
        barrier.wait();
        let pending = w.publish_deferred(Box::new(1));
        // The swap itself never blocked; the reclaim must, until the
        // reader drops its pin.
        let old = pending.into_inner();
        assert_eq!(*old, 0);
        assert_eq!(h.join().unwrap(), 0);
    }
}
