//! Scripted operational episodes against the live dataplane.
//!
//! Steady-state benchmarks plus BGP churn measure a healthy router;
//! this module runs the unhealthy days: a line card dying mid-traffic
//! with its ROT partition re-homed online, a flash crowd collapsing
//! the address distribution onto a few /24s, offered load held above
//! capacity with a bounded ingress queue, and a long-horizon soak
//! mixing churn, faults, and a failure with periodic invariant sweeps.
//!
//! Each scenario builds its table and traces, configures
//! [`crate::runtime::run`], and grades the resulting
//! [`DataplaneReport`] against hard gates (zero oracle divergence
//! always; per-scenario recovery/accounting gates on top). The result
//! is a [`ScenarioReport`] with a flat JSON row for the bench/CI
//! trajectory and per-path latency histograms from the underlying run.
//!
//! The LC-failure scenario additionally samples a [`LiveProbe`] from a
//! side thread while the run executes, producing the recovery-time
//! metric: time from the kill until the aggregate admit-path hit rate
//! is back to ≥95% of its pre-failure steady state.

use crate::fault::FaultPlan;
use crate::report::DataplaneReport;
use crate::runtime::{run, ChurnConfig, DataplaneConfig, FailoverPlan, OverloadConfig};
use spal_cache::LrCacheConfig;
use spal_rib::{synth, RoutingTable};
use spal_traffic::{
    cache_thrash, flash_crowd, preset, FlashCrowdConfig, PresetName, ThrashConfig, Trace,
};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Live run progress, updated by the workers from their admit path and
/// sampled concurrently by the scenario runner. All counters are
/// cumulative; relaxed ordering suffices (the sampler tolerates a
/// window's worth of skew).
#[derive(Debug)]
pub struct LiveProbe {
    start: Instant,
    admitted: AtomicU64,
    hits: AtomicU64,
    dropped: AtomicU64,
    lost: AtomicU64,
    /// Nanoseconds from `start` to the victim's death
    /// (`u64::MAX` = no kill yet).
    kill_ns: AtomicU64,
}

/// One cumulative sample of a [`LiveProbe`].
#[derive(Debug, Clone, Copy)]
struct ProbeSample {
    t_ns: u64,
    admitted: u64,
    hits: u64,
}

impl LiveProbe {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Arc<Self> {
        Arc::new(LiveProbe {
            start: Instant::now(),
            admitted: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            lost: AtomicU64::new(0),
            kill_ns: AtomicU64::new(u64::MAX),
        })
    }

    /// One admit burst: `n` packets probed, `hits` of them complete
    /// cache hits (parked packets count once they resolve nowhere —
    /// the probe measures the admit-path hit rate).
    pub(crate) fn record_admit(&self, n: u64, hits: u64) {
        self.admitted.fetch_add(n, Ordering::Relaxed);
        self.hits.fetch_add(hits, Ordering::Relaxed);
    }

    pub(crate) fn add_dropped(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_lost(&self, n: u64) {
        self.lost.fetch_add(n, Ordering::Relaxed);
    }

    /// Record the victim's death (first call wins).
    pub(crate) fn mark_kill(&self) {
        let ns = self.start.elapsed().as_nanos() as u64;
        let _ = self
            .kill_ns
            .compare_exchange(u64::MAX, ns, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Nanoseconds from probe creation to the kill, if one happened.
    pub fn kill_ns(&self) -> Option<u64> {
        match self.kill_ns.load(Ordering::SeqCst) {
            u64::MAX => None,
            ns => Some(ns),
        }
    }

    fn sample(&self) -> ProbeSample {
        ProbeSample {
            t_ns: self.start.elapsed().as_nanos() as u64,
            admitted: self.admitted.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
        }
    }
}

/// The scripted episodes the subsystem knows how to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Kill one LC mid-traffic; the control plane re-homes its
    /// partition online while packets keep flowing.
    LcFailure,
    /// Zipf traffic collapsing onto a few hot /24s mid-trace, under
    /// light churn.
    FlashCrowd,
    /// Offered load above capacity against a bounded ingress queue:
    /// drops must be accounted, fabric queues bounded.
    Overload,
    /// Deterministic long-horizon soak: churn + faults + an LC failure
    /// + adversarial traffic, with periodic coherence sweeps.
    Soak,
}

impl ScenarioKind {
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::LcFailure,
        ScenarioKind::FlashCrowd,
        ScenarioKind::Overload,
        ScenarioKind::Soak,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::LcFailure => "lc-failure",
            ScenarioKind::FlashCrowd => "flash-crowd",
            ScenarioKind::Overload => "overload",
            ScenarioKind::Soak => "soak",
        }
    }

    pub fn from_name(s: &str) -> Option<ScenarioKind> {
        Self::ALL.iter().copied().find(|k| k.name() == s)
    }
}

/// How to run one scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub kind: ScenarioKind,
    /// LC workers ψ (≥ 2; the failure scenarios kill LC 1).
    pub workers: usize,
    /// Packets per worker.
    pub packets: usize,
    pub seed: u64,
    /// Quick mode: smaller table and traces (CI-sized).
    pub quick: bool,
}

impl ScenarioConfig {
    /// CI/bench defaults for a scenario.
    pub fn new(kind: ScenarioKind, quick: bool) -> Self {
        ScenarioConfig {
            kind,
            workers: 4,
            packets: match (kind, quick) {
                (ScenarioKind::Soak, true) => 60_000,
                (ScenarioKind::Soak, false) => 150_000,
                (_, true) => 150_000,
                (_, false) => 600_000,
            },
            seed: 7,
            quick,
        }
    }

    fn table(&self) -> RoutingTable {
        if self.quick {
            synth::synthesize(&synth::SynthConfig::sized(8_000, self.seed))
        } else {
            synth::rt1(self.seed)
        }
    }
}

/// The recovery-time metric of the LC-failure scenario, computed from
/// the probe samples: pre-failure steady hit rate, time from the kill
/// until a sample window is back at ≥95% of it, and the post-recovery
/// steady rate.
#[derive(Debug, Clone, Copy)]
pub struct RecoverySummary {
    /// Run time at the kill, milliseconds.
    pub kill_ms: f64,
    /// Kill → first ≥95%-of-steady window, milliseconds.
    pub recovery_ms: f64,
    /// Admit-path hit rate before the kill (second half of the
    /// pre-kill windows, skipping cache warm-up).
    pub pre_hit_rate: f64,
    /// Admit-path hit rate over the trailing post-kill windows.
    pub post_hit_rate: f64,
}

/// One scenario's graded result.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    pub kind: ScenarioKind,
    pub workers: usize,
    pub packets: usize,
    pub seed: u64,
    pub quick: bool,
    /// Fabric ring capacity the run used (the queue-depth bound).
    pub ring_capacity: usize,
    /// The underlying dataplane run.
    pub report: DataplaneReport,
    /// LC-failure recovery metric (`None` for the other scenarios, or
    /// when too few probe windows existed to grade one).
    pub recovery: Option<RecoverySummary>,
    /// Hard gates that failed (empty = scenario passed).
    pub gate_failures: Vec<String>,
}

impl ScenarioReport {
    pub fn passed(&self) -> bool {
        self.gate_failures.is_empty()
    }

    /// Sum of a per-worker counter.
    fn sum(&self, f: impl Fn(&crate::report::WorkerReport) -> u64) -> u64 {
        self.report.workers.iter().map(f).sum()
    }

    /// Flat single-line JSON row (the bench gate / trajectory payload).
    pub fn json_row(&self) -> String {
        let r = &self.report;
        let paths = r.latency_paths();
        let failover = match &r.failover {
            Some(f) => format!(
                "{{ \"dead_lc\": {}, \"moved_prefixes\": {}, \"remap_us\": {:.1}, \"targeted\": {} }}",
                f.dead_lc, f.moved_prefixes, f.remap_us, f.targeted
            ),
            None => "null".to_string(),
        };
        let recovery = match &self.recovery {
            Some(rec) => format!(
                "{{ \"kill_ms\": {:.3}, \"recovery_ms\": {:.3}, \"pre_hit_rate\": {:.4}, \"post_hit_rate\": {:.4} }}",
                rec.kill_ms, rec.recovery_ms, rec.pre_hit_rate, rec.post_hit_rate
            ),
            None => "null".to_string(),
        };
        let sweeps = match &r.sweeps {
            Some(s) => format!(
                "{{ \"sweeps\": {}, \"entries_checked\": {}, \"mismatches\": {} }}",
                s.sweeps, s.entries_checked, s.mismatches
            ),
            None => "null".to_string(),
        };
        let gates: Vec<String> = self
            .gate_failures
            .iter()
            .map(|g| format!("\"{}\"", g.replace('"', "'")))
            .collect();
        format!(
            "{{ \"scenario\": \"{}\", \"workers\": {}, \"packets_per_worker\": {}, \"quick\": {}, \"seed\": {}, \"total_packets\": {}, \"throughput_mpps\": {:.3}, \"hit_rate\": {:.4}, \"hit_rate_steady\": {:.4}, \"oracle_divergence\": {}, \"lost_packets\": {}, \"ingress_dropped\": {}, \"dead_letters\": {}, \"rehomed_requests\": {}, \"max_ring_depth\": {}, \"ring_capacity\": {}, \"stale_replies\": {}, \"duplicate_replies\": {}, \"p99_loc_hit_ns\": {}, \"p99_miss_ns\": {}, \"failover\": {}, \"recovery\": {}, \"sweeps\": {}, \"passed\": {}, \"gates_failed\": [{}] }}",
            self.kind.name(),
            self.workers,
            self.packets,
            self.quick,
            self.seed,
            r.total_packets(),
            r.throughput_mpps(),
            r.hit_rate(),
            r.hit_rate_steady(),
            r.oracle_divergence(),
            self.sum(|w| w.lost_packets),
            self.sum(|w| w.ingress_dropped),
            self.sum(|w| w.dead_letters),
            self.sum(|w| w.rehomed_requests),
            self.report
                .workers
                .iter()
                .map(|w| w.max_ring_depth)
                .max()
                .unwrap_or(0),
            self.ring_capacity,
            self.sum(|w| w.stale_replies),
            self.sum(|w| w.duplicate_replies),
            paths.loc_hit.p99_ns(),
            paths.miss.p99_ns(),
            failover,
            recovery,
            sweeps,
            self.passed(),
            gates.join(", "),
        )
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let verdict = if self.passed() {
            "PASS".to_string()
        } else {
            format!("FAIL [{}]", self.gate_failures.join("; "))
        };
        let recovery = match &self.recovery {
            Some(r) => format!(
                " | kill at {:.1} ms, recovered in {:.1} ms ({:.3} -> {:.3})",
                r.kill_ms, r.recovery_ms, r.pre_hit_rate, r.post_hit_rate
            ),
            None => String::new(),
        };
        format!(
            "{}: {} pkts | hit rate {:.3} | divergence {} | drops {} | lost {}{} | {}",
            self.kind.name(),
            self.report.total_packets(),
            self.report.hit_rate(),
            self.report.oracle_divergence(),
            self.sum(|w| w.ingress_dropped),
            self.sum(|w| w.lost_packets),
            recovery,
            verdict,
        )
    }
}

/// Compute the recovery metric from cumulative probe samples and the
/// kill time. `None` when too few windows exist on either side of the
/// kill, or the hit rate never got back to the 95% band.
fn compute_recovery(samples: &[ProbeSample], kill_ns: u64) -> Option<RecoverySummary> {
    // Per-window admit-path hit rates (windows with no admissions are
    // skipped — they carry no rate information).
    let mut windows: Vec<(u64, f64)> = Vec::with_capacity(samples.len());
    for pair in samples.windows(2) {
        let d_admitted = pair[1].admitted.saturating_sub(pair[0].admitted);
        if d_admitted == 0 {
            continue;
        }
        let d_hits = pair[1].hits.saturating_sub(pair[0].hits);
        windows.push((pair[1].t_ns, d_hits as f64 / d_admitted as f64));
    }
    let pre: Vec<f64> = windows
        .iter()
        .filter(|(t, _)| *t <= kill_ns)
        .map(|(_, r)| *r)
        .collect();
    if pre.len() < 4 {
        return None;
    }
    // Steady pre-failure rate: the second half of the pre-kill windows
    // (the first half is cache warm-up).
    let steady = &pre[pre.len() / 2..];
    let pre_rate = steady.iter().sum::<f64>() / steady.len() as f64;
    let post: Vec<(u64, f64)> = windows
        .iter()
        .filter(|(t, _)| *t > kill_ns)
        .copied()
        .collect();
    let (rec_t, _) = post.iter().find(|(_, r)| *r >= 0.95 * pre_rate)?;
    let tail = &post[post.len() / 2..];
    let post_rate = tail.iter().map(|(_, r)| *r).sum::<f64>() / tail.len().max(1) as f64;
    Some(RecoverySummary {
        kill_ms: kill_ns as f64 / 1e6,
        recovery_ms: rec_t.saturating_sub(kill_ns) as f64 / 1e6,
        pre_hit_rate: pre_rate,
        post_hit_rate: post_rate,
    })
}

/// Shared gate: the run never disagreed with the full-table oracle.
fn gate_divergence(report: &DataplaneReport, failures: &mut Vec<String>) {
    let d = report.oracle_divergence();
    if d != 0 {
        failures.push(format!("oracle_divergence {d} != 0"));
    }
}

const RING_CAPACITY: usize = 1024;

fn base_config(cfg: &ScenarioConfig) -> DataplaneConfig {
    DataplaneConfig {
        workers: cfg.workers,
        cache: LrCacheConfig::paper(4096),
        ring_capacity: RING_CAPACITY,
        seed: cfg.seed,
        ..Default::default()
    }
}

/// Run one scenario end to end: build table and traces, run the
/// dataplane, grade the gates.
pub fn run_scenario(cfg: &ScenarioConfig) -> ScenarioReport {
    assert!(cfg.workers >= 2, "scenarios need at least two workers");
    assert!(cfg.packets > 0, "scenarios need packets");
    match cfg.kind {
        ScenarioKind::LcFailure => run_lc_failure(cfg),
        ScenarioKind::FlashCrowd => run_flash_crowd(cfg),
        ScenarioKind::Overload => run_overload(cfg),
        ScenarioKind::Soak => run_soak(cfg),
    }
}

/// E21: kill LC 1 at 40% of its trace; survivors re-home its partition
/// online. Gates: zero divergence, a finite recovery time, and the
/// post-failure hit rate back to ≥95% of pre-failure.
fn run_lc_failure(cfg: &ScenarioConfig) -> ScenarioReport {
    let table = cfg.table();
    let p = preset(PresetName::D75);
    let traces: Vec<Trace> = (0..cfg.workers)
        .map(|lc| p.generate(&table, cfg.packets, cfg.seed + lc as u64))
        .collect();
    let probe = LiveProbe::new();
    let dcfg = DataplaneConfig {
        failover: Some(FailoverPlan {
            lc: 1,
            after_packets: (cfg.packets as u64) * 2 / 5,
        }),
        probe: Some(Arc::clone(&probe)),
        ..base_config(cfg)
    };
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let probe = Arc::clone(&probe);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut samples = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                samples.push(probe.sample());
                std::thread::sleep(Duration::from_micros(200));
            }
            samples.push(probe.sample());
            samples
        })
    };
    let report = run(&table, &traces, &dcfg);
    stop.store(true, Ordering::SeqCst);
    let samples = sampler.join().expect("sampler thread panicked");

    let recovery = probe
        .kill_ns()
        .and_then(|kill| compute_recovery(&samples, kill));
    let mut failures = Vec::new();
    gate_divergence(&report, &mut failures);
    if report.failover.is_none() {
        failures.push("no remap ran".to_string());
    }
    match &recovery {
        None => failures.push("no finite recovery time".to_string()),
        Some(r) => {
            if r.post_hit_rate < 0.95 * r.pre_hit_rate {
                failures.push(format!(
                    "post-failure hit rate {:.4} < 95% of pre-failure {:.4}",
                    r.post_hit_rate, r.pre_hit_rate
                ));
            }
        }
    }
    let lost: u64 = report.workers.iter().map(|w| w.lost_packets).sum();
    let expected = (cfg.workers * cfg.packets) as u64 - lost;
    if report.total_packets() != expected {
        failures.push(format!(
            "completed {} != admitted-minus-lost {expected}",
            report.total_packets()
        ));
    }
    ScenarioReport {
        kind: cfg.kind,
        workers: cfg.workers,
        packets: cfg.packets,
        seed: cfg.seed,
        quick: cfg.quick,
        ring_capacity: RING_CAPACITY,
        report,
        recovery,
        gate_failures: failures,
    }
}

/// E22: Zipf stream collapsing onto hot /24s mid-trace, under light
/// churn. Gates: zero divergence, every packet completed, bounded
/// fabric queues.
fn run_flash_crowd(cfg: &ScenarioConfig) -> ScenarioReport {
    let table = cfg.table();
    let fc = FlashCrowdConfig {
        distinct: if cfg.quick { 8_000 } else { 20_000 },
        ..Default::default()
    };
    let traces: Vec<Trace> = (0..cfg.workers)
        .map(|lc| flash_crowd(&table, cfg.packets, cfg.seed + lc as u64, &fc))
        .collect();
    let dcfg = DataplaneConfig {
        churn: Some(ChurnConfig {
            updates: if cfg.quick { 1_000 } else { 4_000 },
            updates_per_publication: 50,
            withdraw_fraction: 0.3,
            pace_us: 100,
        }),
        ..base_config(cfg)
    };
    let report = run(&table, &traces, &dcfg);
    let mut failures = Vec::new();
    gate_divergence(&report, &mut failures);
    let expected = (cfg.workers * cfg.packets) as u64;
    if report.total_packets() != expected {
        failures.push(format!(
            "completed {} != offered {expected}",
            report.total_packets()
        ));
    }
    gate_ring_depth(&report, &mut failures);
    ScenarioReport {
        kind: cfg.kind,
        workers: cfg.workers,
        packets: cfg.packets,
        seed: cfg.seed,
        quick: cfg.quick,
        ring_capacity: RING_CAPACITY,
        report,
        recovery: None,
        gate_failures: failures,
    }
}

/// Fabric backpressure gate: rings stayed within their bound (the
/// high-water mark proves the introspection saw real depth, and the
/// bound proves no unbounded queueing).
fn gate_ring_depth(report: &DataplaneReport, failures: &mut Vec<String>) {
    let max_depth = report
        .workers
        .iter()
        .map(|w| w.max_ring_depth)
        .max()
        .unwrap_or(0);
    if max_depth == 0 {
        failures.push("ring depth never observed (no fabric traffic?)".to_string());
    }
    if max_depth > RING_CAPACITY as u64 {
        failures.push(format!(
            "ring depth {max_depth} exceeds capacity {RING_CAPACITY}"
        ));
    }
}

/// E23: offered load above capacity against a bounded ingress queue.
/// Gates: zero divergence, drops happened and are exactly accounted
/// (completed + dropped = offered), bounded fabric queues.
fn run_overload(cfg: &ScenarioConfig) -> ScenarioReport {
    let table = cfg.table();
    let p = preset(PresetName::BL); // least cacheable preset: most FE work
    let traces: Vec<Trace> = (0..cfg.workers)
        .map(|lc| p.generate(&table, cfg.packets, cfg.seed + lc as u64))
        .collect();
    let dcfg = DataplaneConfig {
        overload: Some(OverloadConfig {
            offered_pps: 40e6,
            ingress_capacity: 4_096,
        }),
        ..base_config(cfg)
    };
    let report = run(&table, &traces, &dcfg);
    let mut failures = Vec::new();
    gate_divergence(&report, &mut failures);
    let dropped: u64 = report.workers.iter().map(|w| w.ingress_dropped).sum();
    if dropped == 0 {
        failures.push("overload produced no ingress drops".to_string());
    }
    for w in &report.workers {
        let accounted = w.packets + w.ingress_dropped;
        if accounted != cfg.packets as u64 {
            failures.push(format!(
                "lc {}: completed {} + dropped {} != offered {}",
                w.lc, w.packets, w.ingress_dropped, cfg.packets
            ));
        }
    }
    gate_ring_depth(&report, &mut failures);
    ScenarioReport {
        kind: cfg.kind,
        workers: cfg.workers,
        packets: cfg.packets,
        seed: cfg.seed,
        quick: cfg.quick,
        ring_capacity: RING_CAPACITY,
        report,
        recovery: None,
        gate_failures: failures,
    }
}

/// E24: deterministic long-horizon soak — churn + fabric faults + an
/// LC failure + flash-crowd-then-thrash traffic, with a coherence
/// sweep every 64 rounds. Gates: zero divergence (including every
/// sweep), sweeps actually ran, the remap ran.
fn run_soak(cfg: &ScenarioConfig) -> ScenarioReport {
    let table = cfg.table();
    let fc = FlashCrowdConfig {
        distinct: if cfg.quick { 6_000 } else { 15_000 },
        ..Default::default()
    };
    let th = ThrashConfig {
        working_set: 5_000,
        phase_len: 10_000,
        phases: 3,
    };
    let traces: Vec<Trace> = (0..cfg.workers)
        .map(|lc| {
            let seed = cfg.seed + lc as u64;
            let half = cfg.packets / 2;
            let a = flash_crowd(&table, half, seed, &fc);
            let b = cache_thrash(&table, cfg.packets - half, seed ^ 0x50AC, &th);
            let mut dests = a.destinations().to_vec();
            dests.extend_from_slice(b.destinations());
            Trace::new(format!("soak(lc {lc})"), dests)
        })
        .collect();
    let dcfg = DataplaneConfig {
        deterministic: true,
        churn: Some(ChurnConfig {
            updates: if cfg.quick { 1_000 } else { 3_000 },
            updates_per_publication: 50,
            withdraw_fraction: 0.3,
            pace_us: 0,
        }),
        faults: Some(FaultPlan {
            seed: cfg.seed ^ 0xFA17,
            delay_per_mille: 30,
            drop_per_mille: 10,
            dup_per_mille: 10,
            stall_per_mille: 5,
            forced_publication_per_mille: 3,
            max_delay_iters: 3,
            retransmit_delay_iters: 5,
        }),
        failover: Some(FailoverPlan {
            lc: 1,
            after_packets: (cfg.packets as u64) * 2 / 5,
        }),
        sweep_every: 64,
        ..base_config(cfg)
    };
    let report = run(&table, &traces, &dcfg);
    let mut failures = Vec::new();
    gate_divergence(&report, &mut failures);
    match &report.sweeps {
        None => failures.push("no coherence sweeps ran".to_string()),
        Some(s) => {
            if s.sweeps == 0 {
                failures.push("no coherence sweeps ran".to_string());
            }
            if s.mismatches != 0 {
                failures.push(format!("{} sweep mismatches", s.mismatches));
            }
        }
    }
    if report.failover.is_none() {
        failures.push("no remap ran".to_string());
    }
    ScenarioReport {
        kind: cfg.kind,
        workers: cfg.workers,
        packets: cfg.packets,
        seed: cfg.seed,
        quick: cfg.quick,
        ring_capacity: RING_CAPACITY,
        report,
        recovery: None,
        gate_failures: failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for k in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ScenarioKind::from_name("nope"), None);
    }

    #[test]
    fn recovery_metric_detects_dip_and_return() {
        // Cumulative samples: steady 0.9 hit rate, a dip to 0.2 after
        // the kill at t=10, recovery at t=16.
        let mut samples = Vec::new();
        let (mut admitted, mut hits) = (0u64, 0u64);
        for t in 0..30u64 {
            admitted += 100;
            hits += match t {
                0..=10 => 90,
                11..=15 => 20,
                _ => 92,
            };
            samples.push(ProbeSample {
                t_ns: t * 1_000_000,
                admitted,
                hits,
            });
        }
        let r = compute_recovery(&samples, 10_500_000).expect("recovery found");
        assert!(
            (r.pre_hit_rate - 0.9).abs() < 0.05,
            "pre {}",
            r.pre_hit_rate
        );
        // Kill at 10.5 ms, first >=95% window ends at t=17 ms.
        assert!(
            (5.0..8.0).contains(&r.recovery_ms),
            "recovery_ms {}",
            r.recovery_ms
        );
        assert!(r.post_hit_rate > 0.85);
    }

    #[test]
    fn recovery_none_when_rate_never_returns() {
        let mut samples = Vec::new();
        let (mut admitted, mut hits) = (0u64, 0u64);
        for t in 0..20u64 {
            admitted += 100;
            hits += if t <= 10 { 90 } else { 10 };
            samples.push(ProbeSample {
                t_ns: t * 1_000_000,
                admitted,
                hits,
            });
        }
        assert!(compute_recovery(&samples, 10_500_000).is_none());
    }

    #[test]
    fn quick_soak_scenario_passes_gates() {
        let mut cfg = ScenarioConfig::new(ScenarioKind::Soak, true);
        cfg.packets = 20_000;
        let r = run_scenario(&cfg);
        assert!(r.passed(), "soak gates failed: {:?}", r.gate_failures);
        assert!(r.report.failover.is_some());
        assert!(r.report.sweeps.expect("sweeps ran").sweeps > 0);
        let row = r.json_row();
        assert!(row.contains("\"scenario\": \"soak\""));
    }
}
