//! The multi-threaded SPAL runtime.
//!
//! ψ LC **workers** each own one ROT-partition forwarding engine (read
//! through the epoch layer) and one local LR-cache, and exchange
//! home-LC request/reply [`FabricMsg`]s over bounded lock-free SPSC
//! rings — the concurrency mechanism behind the timing the
//! discrete-event simulator models. A **control plane** consumes a BGP
//! update stream, patches a shadow snapshot chunk-granularly through
//! each engine's [`Lpm::apply_delta`] (falling back to a per-LC
//! fragment rebuild when an engine declines), publishes the snapshot
//! RCU-style ([`crate::epoch`]), and broadcasts either a full-flush or
//! prefix-targeted cache invalidations.
//!
//! ## Worker iteration
//!
//! Each iteration a worker: pins the current snapshot, drains its
//! control ring (cache invalidations), drains its fabric rings
//! (requests from other workers and replies to its own), admits one
//! batch from its trace, resolves the accumulated FE queue through one
//! `lookup_batch` call, and flushes its outbox. Missed addresses are
//! *parked* (one pending job per distinct address — the W-bit early
//! recording discipline of §3.2) so duplicate work is never issued;
//! each resolved address completes every parked waiter at once, either
//! locally or with a reply over the fabric.
//!
//! Pushes never block: undeliverable messages sit in a per-worker
//! outbox and retry next iteration while the worker keeps draining its
//! own rings — so two workers flooding each other cannot deadlock.
//! A worker is *done* when its trace is exhausted and it holds no
//! pending jobs, queued messages, or outstanding requests; it keeps
//! serving remote requests until every worker is done.
//!
//! ## Update visibility
//!
//! Fills racing a publication are benign in one direction (a fresh
//! entry invalidated spuriously) and handled explicitly in the other:
//! replies carry the table version they were computed against, and a
//! reply older than the receiver's last-processed invalidation
//! completes its packet but is not cached (`stale_replies`).

use crate::epoch::{epoch_table, EpochReader, EpochWriter};
use crate::fault::{FaultInjector, FaultPlan};
use crate::report::{
    ChurnReport, CoherenceSummary, DataplaneReport, FailoverSummary, FaultReport, SweepSummary,
    TailSummary, WorkerReport,
};
use crate::scenario::LiveProbe;
use crate::vcache::{VersionedCache, VersionedFill};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spal_cache::{BatchProbe, LrCache, LrCacheConfig, Origin, ProbeResult};
use spal_core::bits::{eta_for, select_bits};
use spal_core::{ForwardingTable, LpmAlgorithm, Partitioning};
use spal_fabric::{
    spsc_ring, AddrBatch, FabricMsg, MsgKind, ReplyBatch, SpscConsumer, SpscProducer,
    BATCH_MSG_LANES,
};
use spal_lpm::{CountedLookup, Lpm};
use spal_rib::updates::{update_stream, Update, UpdateStreamConfig};
use spal_rib::{Prefix, RoutingTable};
use spal_traffic::Trace;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// How the control plane invalidates LR-caches after a publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvalidationMode {
    /// §3.2 baseline: flush every cache entirely after each update
    /// batch.
    FullFlush,
    /// Evict only entries covered by the changed prefixes
    /// ([`LrCache::invalidate_covered`]); unaffected entries keep their
    /// hits across churn.
    #[default]
    Targeted,
}

/// BGP churn applied while the dataplane forwards.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Total updates in the synthetic stream.
    pub updates: usize,
    /// Updates applied per snapshot publication.
    pub updates_per_publication: usize,
    /// Fraction of updates that withdraw a live route.
    pub withdraw_fraction: f64,
    /// Threaded runs: minimum microseconds between publications
    /// (0 = publish as fast as possible). Deterministic runs ignore
    /// this and spread publications evenly over the trace.
    pub pace_us: u64,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            updates: 2_000,
            updates_per_publication: 50,
            withdraw_fraction: 0.3,
            pace_us: 200,
        }
    }
}

/// Deterministic LC-failure schedule: the scripted line-card loss the
/// failover scenario injects. The victim worker dies — stops draining
/// its rings, loses its unfinished packets, and marks itself done —
/// right after admitting `after_packets` of its own trace; the control
/// plane notices and re-homes its ROT partition across the survivors
/// online (see `Control::remap_failed`).
#[derive(Debug, Clone, Copy)]
pub struct FailoverPlan {
    /// The LC worker that dies (must be `< workers`, and `workers >= 2`
    /// so survivors exist).
    pub lc: u16,
    /// The victim dies once it has admitted at least this many of its
    /// own packets.
    pub after_packets: u64,
}

/// Sustained-overload admission: offered load above capacity with a
/// bounded ingress queue per worker. Arrivals are modelled by a token
/// bucket at `offered_pps`; packets the worker cannot admit pile into
/// an ingress queue capped at `ingress_capacity`, and the overflow is
/// dropped (head-drop) and accounted — never silently completed.
#[derive(Debug, Clone, Copy)]
pub struct OverloadConfig {
    /// Offered load per worker, packets per second.
    pub offered_pps: f64,
    /// Bounded ingress queue: packets that have arrived but are not yet
    /// admitted, beyond which arrivals drop.
    pub ingress_capacity: usize,
}

/// Configuration of one dataplane run.
#[derive(Debug, Clone)]
pub struct DataplaneConfig {
    /// Number of LC worker threads ψ.
    pub workers: usize,
    /// LPM structure each partition engine runs.
    pub algorithm: LpmAlgorithm,
    /// Per-worker LR-cache configuration.
    pub cache: LrCacheConfig,
    /// Packets a worker admits from its trace per iteration.
    pub batch: usize,
    /// Capacity of each fabric SPSC ring.
    pub ring_capacity: usize,
    /// Churn stream (`None` = static table).
    pub churn: Option<ChurnConfig>,
    /// Cache-invalidation strategy after publications.
    pub invalidation: InvalidationMode,
    /// Cross-check every Nth FE result against scalar `lookup_counted`
    /// on the same pinned snapshot (0 = off).
    pub spot_check_every: u64,
    /// Run single-threaded with a fixed round-robin schedule — results
    /// are exactly reproducible (used by the sim-parity suite).
    pub deterministic: bool,
    /// Seed for the churn stream and the final consistency sampler.
    pub seed: u64,
    /// Fault-injection plan (`None` = faultless fabric). Deterministic
    /// for a given plan seed; see [`crate::fault`].
    pub faults: Option<FaultPlan>,
    /// Patch shadow tables chunk-granularly via [`Lpm::apply_delta`]
    /// (`true`, the default) or rebuild every touched per-LC fragment
    /// from scratch on each publication (`false` — the benchmark's
    /// patch-vs-rebuild control arm).
    pub delta_patching: bool,
    /// Vector mode (`true`, the default): burst ring drains, the
    /// batched LR-cache probe pass, and per-destination coalescing of
    /// fabric messages. `false` is the scalar per-packet/per-message
    /// hot loop — the benchmark's baseline arm. In deterministic
    /// faultless runs both modes produce bit-identical canonical
    /// reports (the per-address operation sequences are the same; only
    /// the message framing differs).
    pub vector: bool,
    /// Record per-packet latency histograms (`true`, the default).
    /// When no consumer wants the histograms (the CLI without
    /// `--out-latency`), turning this off removes the admit-burst
    /// timestamp pair and the per-waiter clock reads from the hot
    /// path; throughput counters and checksums are unaffected.
    pub capture_latency: bool,
    /// Scripted LC failure with online re-partitioning (`None` = no
    /// failure; the default).
    pub failover: Option<FailoverPlan>,
    /// Overload admission gate (`None` = admit straight from the trace;
    /// the default). Wall-clock-paced, so only meaningful on threaded
    /// runs.
    pub overload: Option<OverloadConfig>,
    /// Live progress probe the scenario runner samples concurrently
    /// with the run (`None` = no probe; the default).
    pub probe: Option<Arc<LiveProbe>>,
    /// Deterministic runs: every N rounds, drain each live worker's
    /// control ring and compare every resident cache entry against the
    /// per-LC RIB oracle (0 = off; the default). The soak scenario's
    /// periodic invariant sweep.
    pub sweep_every: usize,
}

impl Default for DataplaneConfig {
    fn default() -> Self {
        DataplaneConfig {
            workers: 4,
            algorithm: LpmAlgorithm::Dp,
            cache: LrCacheConfig::paper(4096),
            batch: 32,
            ring_capacity: 1024,
            churn: None,
            invalidation: InvalidationMode::Targeted,
            spot_check_every: 64,
            deterministic: false,
            seed: 1,
            faults: None,
            delta_patching: true,
            vector: true,
            capture_latency: true,
            failover: None,
            overload: None,
            probe: None,
            sweep_every: 0,
        }
    }
}

/// One published forwarding state: every LC's partition engine plus the
/// update sequence number it reflects.
struct Snapshot {
    tables: Vec<ForwardingTable>,
    /// Updates `< applied_seq` are reflected in `tables`.
    applied_seq: u64,
    /// Publication version (epoch at publish time); stamps replies.
    version: u64,
    /// The partitioning `tables` was built for. Published through the
    /// same RCU pointer as the tables so a re-partitioning after an LC
    /// failure reaches every worker atomically with the re-homed
    /// fragments (workers adopt it in `sync_partition`).
    part: Arc<Partitioning>,
    /// Bitmask of dead LCs under this snapshot (bit `i` = LC `i`).
    dead: u64,
}

/// Control-plane → worker messages.
#[derive(Debug, Clone, Copy)]
enum CtrlMsg {
    /// Flush the whole LR-cache (post-publication, FullFlush mode).
    Flush { version: u64 },
    /// Evict entries covered by one changed prefix (Targeted mode).
    Invalidate { bits: u32, len: u8, version: u64 },
}

#[derive(Debug, Clone, Copy)]
enum Waiter {
    /// One of this worker's own packets; `admitted` stamps when its
    /// admit burst started, for the miss-path latency histogram.
    Local { admitted: Instant },
    /// A remote request to answer once the address resolves.
    Remote { src: u16, packet_id: u64 },
}

/// One would-be fabric message, recorded per destination in creation
/// order. Vector mode accumulates these where scalar mode pushes a
/// [`FabricMsg`] straight into the outbox; at flush time consecutive
/// same-kind runs (same-version for replies) coalesce into batch
/// messages. Keeping the *event stream* — rather than separate
/// request/reply buffers — preserves the scalar per-destination message
/// order exactly, which is what keeps the receiver's cache-operation
/// sequence (and therefore the canonical report) bit-identical across
/// the two modes.
#[derive(Debug, Clone, Copy)]
enum OutEvent {
    /// "Look this address up for me" → [`MsgKind::Request`] /
    /// [`MsgKind::BatchRequest`].
    Req { addr: u32 },
    /// A lookup result computed against table `version` →
    /// [`MsgKind::Reply`] / [`MsgKind::BatchReply`].
    Rep {
        addr: u32,
        packet_id: u64,
        nh: Option<u16>,
        version: u64,
    },
}

/// Fabric-ring drain burst in vector mode (messages per `pop_slice`).
const DRAIN_BURST: usize = 256;

fn update_prefix(u: Update) -> Prefix {
    match u {
        Update::Announce(e) => e.prefix,
        Update::Withdraw(p) => p,
    }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

/// Token-bucket state behind [`OverloadConfig`]: arrivals accrue at the
/// offered rate; the gap between `arrived` and the admit cursor is the
/// bounded ingress queue.
struct OverloadState {
    rate_pps: f64,
    capacity: usize,
    tokens: f64,
    last: Instant,
    /// Trace positions `< arrived` have "arrived at the line card".
    arrived: usize,
}

struct WorkerCore {
    lc: usize,
    psi: usize,
    part: Arc<Partitioning>,
    cache: VersionedCache<Option<u16>>,
    dests: Arc<[u32]>,
    pos: usize,
    batch: usize,
    /// Producers to every other worker (`None` at `self.lc`).
    req_tx: Vec<Option<SpscProducer<FabricMsg>>>,
    /// Consumers from every other worker (`None` at `self.lc`).
    req_rx: Vec<Option<SpscConsumer<FabricMsg>>>,
    ctrl_rx: SpscConsumer<CtrlMsg>,
    outbox: VecDeque<FabricMsg>,
    /// One entry per distinct in-flight address: all packets/requests
    /// waiting on its result (the W-bit discipline).
    pending: HashMap<u32, Vec<Waiter>>,
    /// Addresses to resolve on the local engine this iteration.
    fe_queue: Vec<u32>,
    results: Vec<CountedLookup>,
    /// Addresses with an unanswered remote request in flight. A set,
    /// not a counter, so a duplicated reply (fault injection, or a real
    /// fabric's at-least-once retry) is recognized and ignored.
    awaiting_reply: HashSet<u32>,
    /// Fault adversary (`None` on a faultless fabric).
    faults: Option<FaultInjector>,
    spot_check_every: u64,
    fe_since_check: u64,
    report: WorkerReport,
    done: Arc<AtomicUsize>,
    marked_done: bool,
    completed_this_iter: u64,
    /// Vector mode on (burst drains, batched probes, coalesced sends).
    vector: bool,
    /// Per-destination would-be messages awaiting coalescing (vector
    /// mode; all empty in scalar mode). Entry `self.lc` stays unused.
    out_events: Vec<Vec<OutEvent>>,
    /// Scratch for the batched probe pass (reused across iterations).
    probe_scratch: Vec<BatchProbe<Option<u16>>>,
    /// Scratch for burst ring drains.
    pop_scratch: Vec<FabricMsg>,
    /// Scratch for burst ring pushes.
    push_scratch: Vec<FabricMsg>,
    /// Whether the midpoint cold-start cache snapshot was taken.
    cold_recorded: bool,
    /// Record latency histograms (from
    /// [`DataplaneConfig::capture_latency`]); when off, admit bursts
    /// skip their timestamp pair and waiters carry a reused epoch
    /// instant instead of a fresh clock read.
    capture_latency: bool,
    /// Stand-in `admitted` stamp for parked waiters while latency
    /// capture is off (never subtracted — `resolve` skips the record).
    epoch: Instant,
    /// Scripted failure schedule (every worker carries the plan; only
    /// the victim acts on it).
    failover: Option<FailoverPlan>,
    /// This worker died (it is the failover victim past its trigger).
    failed: bool,
    /// Shared failure flag: the victim stores its LC index here; the
    /// control plane polls it and remaps (`usize::MAX` = none).
    failed_flag: Arc<AtomicUsize>,
    /// Dead LCs as of the last adopted snapshot — destinations to
    /// never send to.
    dead_mask: u64,
    /// Overload admission gate (`None` = admit freely).
    overload: Option<OverloadState>,
    /// Live progress probe for the scenario sampler.
    probe: Option<Arc<LiveProbe>>,
}

struct Worker {
    reader: EpochReader<Snapshot>,
    core: WorkerCore,
}

impl WorkerCore {
    fn complete(&mut self, nh: Option<u16>) {
        self.report.packets += 1;
        self.report.next_hop_sum = self
            .report
            .next_hop_sum
            .wrapping_add(nh.map(|h| h as u64 + 1).unwrap_or(0));
        self.completed_this_iter += 1;
    }

    /// Queue a reply: a scalar message straight into the outbox, or —
    /// in vector mode — an event awaiting per-destination coalescing.
    /// Replies to a dead LC are dropped (the requester cannot drain
    /// them, and its waiters died with it).
    fn emit_reply(&mut self, dst: u16, addr: u32, packet_id: u64, nh: Option<u16>, version: u64) {
        if self.dead_mask >> dst & 1 == 1 {
            self.report.dead_letters += 1;
            return;
        }
        if self.vector {
            self.out_events[dst as usize].push(OutEvent::Rep {
                addr,
                packet_id,
                nh,
                version,
            });
        } else {
            self.outbox.push_back(FabricMsg {
                kind: MsgKind::Reply { next_hop: nh },
                src: self.lc as u16,
                dst,
                addr,
                packet_id,
                sent_at: version,
            });
        }
    }

    /// Queue a home-LC lookup request (scalar message or coalescable
    /// event, as [`Self::emit_reply`]). Requests are never addressed to
    /// a known-dead LC: `home_of` under the adopted partitioning never
    /// returns one, and the rehome sweep re-routes using the new map.
    fn emit_request(&mut self, dst: u16, addr: u32) {
        debug_assert!(
            self.dead_mask >> dst & 1 == 0,
            "request addressed to a dead LC"
        );
        if self.vector {
            self.out_events[dst as usize].push(OutEvent::Req { addr });
        } else {
            self.outbox.push_back(FabricMsg {
                kind: MsgKind::Request,
                src: self.lc as u16,
                dst,
                addr,
                packet_id: 0,
                sent_at: 0,
            });
        }
    }

    /// Park a waiter on `addr`; the first waiter creates the job and
    /// routes it (local FE queue or remote request).
    fn park(&mut self, addr: u32, w: Waiter) {
        use std::collections::hash_map::Entry;
        match self.pending.entry(addr) {
            Entry::Occupied(mut e) => e.get_mut().push(w),
            Entry::Vacant(e) => {
                e.insert(vec![w]);
                let home = self.part.home_of(addr);
                if home as usize == self.lc {
                    self.fe_queue.push(addr);
                } else {
                    self.awaiting_reply.insert(addr);
                    self.report.remote_requests += 1;
                    self.emit_request(home, addr);
                }
            }
        }
    }

    /// Complete every waiter parked on `addr` with its resolved result.
    /// `now` is taken once per drain/flush phase; local waiters book
    /// `now - admitted` on the miss-path latency histogram.
    fn resolve(&mut self, addr: u32, nh: Option<u16>, version: u64, now: Instant) {
        if let Some(waiters) = self.pending.remove(&addr) {
            for w in waiters {
                match w {
                    Waiter::Local { admitted } => {
                        if self.capture_latency {
                            let ns = now.saturating_duration_since(admitted).as_nanos() as u64;
                            self.report.latency.miss.record(ns);
                        }
                        self.complete(nh);
                    }
                    Waiter::Remote { src, packet_id } => {
                        self.emit_reply(src, addr, packet_id, nh, version)
                    }
                }
            }
        }
    }

    /// Adopt the pinned snapshot's partitioning if it changed (an
    /// online re-partitioning after an LC failure). In-flight state
    /// routed under the old map is migrated, in deterministic order:
    ///
    /// * queued messages to a now-dead LC are purged (`dead_letters`);
    /// * parked remote waiters whose requester died are dropped (no one
    ///   is left to receive the reply);
    /// * outstanding remote requests whose home moved are re-routed —
    ///   pulled into the local FE queue when this worker is the new
    ///   home, re-issued to the new home otherwise. The original
    ///   request may still produce a reply (it is dead only if the old
    ///   home died); `awaiting_reply` being a set makes the eventual
    ///   duplicate harmless.
    fn sync_partition(&mut self, snap: &Snapshot) {
        if Arc::ptr_eq(&self.part, &snap.part) && self.dead_mask == snap.dead {
            return;
        }
        let old = std::mem::replace(&mut self.part, Arc::clone(&snap.part));
        let dead = snap.dead;
        self.dead_mask = dead;
        if self.failed {
            return;
        }
        for waiters in self.pending.values_mut() {
            waiters.retain(|w| match w {
                Waiter::Remote { src, .. } => dead >> *src & 1 == 0,
                Waiter::Local { .. } => true,
            });
        }
        let before = self.outbox.len();
        self.outbox.retain(|m| dead >> m.dst & 1 == 0);
        self.report.dead_letters += (before - self.outbox.len()) as u64;
        for (dst, events) in self.out_events.iter_mut().enumerate() {
            if dead >> dst & 1 == 1 && !events.is_empty() {
                self.report.dead_letters += events.len() as u64;
                events.clear();
            }
        }
        // Sorted for determinism (HashSet iteration order is not).
        let mut in_flight: Vec<u32> = self.awaiting_reply.iter().copied().collect();
        in_flight.sort_unstable();
        for addr in in_flight {
            let old_home = old.home_of(addr);
            let new_home = self.part.home_of(addr);
            if new_home == old_home && dead >> old_home & 1 == 0 {
                continue;
            }
            self.report.rehomed_requests += 1;
            if new_home as usize == self.lc {
                self.awaiting_reply.remove(&addr);
                self.fe_queue.push(addr);
            } else {
                self.emit_request(new_home, addr);
            }
        }
    }

    /// Fire the scripted LC failure once its trigger point is reached:
    /// the victim loses every packet it has not completed, clears all
    /// in-flight state, raises the shared failure flag for the control
    /// plane, and marks itself done. Returns `true` while dead.
    fn maybe_die(&mut self) -> bool {
        if self.failed {
            return true;
        }
        let Some(plan) = self.failover else {
            return false;
        };
        if plan.lc as usize != self.lc || (self.pos as u64) < plan.after_packets {
            return false;
        }
        // Own packets never delivered: the unadmitted tail plus every
        // admitted-but-parked packet (ingress drops are accounted
        // separately, not lost).
        let lost = self.dests.len() as u64 - self.report.packets - self.report.ingress_dropped;
        self.report.lost_packets = lost;
        self.pos = self.dests.len();
        self.pending.clear();
        self.fe_queue.clear();
        self.awaiting_reply.clear();
        self.outbox.clear();
        for events in self.out_events.iter_mut() {
            events.clear();
        }
        self.failed = true;
        if let Some(p) = &self.probe {
            p.add_lost(lost);
            p.mark_kill();
        }
        self.failed_flag.store(self.lc, Ordering::SeqCst);
        if !self.marked_done {
            self.marked_done = true;
            self.done.fetch_add(1, Ordering::SeqCst);
        }
        true
    }

    fn drain_ctrl(&mut self) -> u64 {
        let mut n = 0;
        while let Some(msg) = self.ctrl_rx.try_pop() {
            n += 1;
            match msg {
                CtrlMsg::Flush { version } => self.cache.apply_flush(version),
                CtrlMsg::Invalidate { bits, len, version } => {
                    self.cache.apply_invalidation(bits, len, version);
                }
            }
        }
        n
    }

    /// One remote request for one address — the per-address semantics
    /// shared by scalar [`MsgKind::Request`]s and each lane of a
    /// [`MsgKind::BatchRequest`].
    fn handle_request_addr(&mut self, src: u16, addr: u32, packet_id: u64, snap: &Snapshot) {
        // Under failover a request routed on the old partitioning can
        // arrive after this worker adopted the new one; it is answered
        // from the local table regardless (the reply's version gate
        // handles staleness). Without failover the home must match.
        debug_assert!(
            self.failover.is_some() || self.part.home_of(addr) as usize == self.lc,
            "request arrived at a non-home LC without failover"
        );
        self.report.remote_served += 1;
        match self.cache.probe(addr) {
            ProbeResult::Hit { value, .. } => {
                self.emit_reply(src, addr, packet_id, value, snap.version)
            }
            ProbeResult::HitWaiting => self.park(addr, Waiter::Remote { src, packet_id }),
            ProbeResult::Miss => {
                let _ = self.cache.reserve(addr);
                self.park(addr, Waiter::Remote { src, packet_id });
            }
        }
    }

    /// One reply for one address — shared by scalar [`MsgKind::Reply`]s
    /// and each lane of a [`MsgKind::BatchReply`] (`sent_at` is the
    /// carrying message's table version; every lane of a batch reply
    /// was computed against it).
    fn handle_reply_addr(&mut self, addr: u32, nh: Option<u16>, sent_at: u64, now: Instant) {
        if !self.awaiting_reply.remove(&addr) {
            // A duplicated (or retransmitted-after-resolve) reply: the
            // original already completed every waiter and filled the
            // cache, so this copy is dropped idempotently.
            self.report.duplicate_replies += 1;
            return;
        }
        self.report.replies_received += 1;
        match self.cache.fill_versioned(addr, nh, Origin::Rem, sent_at) {
            VersionedFill::Cached(_) => {}
            // Result computed on a table older than an invalidation we
            // already processed: complete the packet (one stale delivery,
            // as on a real router) but never cache the value.
            VersionedFill::StaleDropped => self.report.stale_replies += 1,
        }
        self.resolve(addr, nh, sent_at, now);
    }

    /// Route one delivered message. Batch messages unpack to the same
    /// per-address handlers, in lane order — a receiver processes a
    /// coalesced message exactly as it would the equivalent scalar run.
    fn dispatch(&mut self, msg: FabricMsg, snap: &Snapshot, now: Instant) {
        match msg.kind {
            MsgKind::Request => self.handle_request_addr(msg.src, msg.addr, msg.packet_id, snap),
            MsgKind::Reply { next_hop } => {
                self.handle_reply_addr(msg.addr, next_hop, msg.sent_at, now)
            }
            MsgKind::BatchRequest(b) => {
                for &addr in b.addrs() {
                    self.handle_request_addr(msg.src, addr, 0, snap);
                }
            }
            MsgKind::BatchReply(b) => {
                for (addr, nh) in b.iter() {
                    self.handle_reply_addr(addr, nh, msg.sent_at, now);
                }
            }
        }
    }

    fn drain_fabric(&mut self, snap: &Snapshot) -> u64 {
        let now = Instant::now();
        let mut n = 0;
        for src in 0..self.psi {
            let Some(mut rx) = self.req_rx[src].take() else {
                continue;
            };
            if self.vector {
                // Burst drain: one Acquire/Release pair per up-to-256
                // messages instead of per message. Loop until the ring
                // is dry so both modes drain each source fully.
                loop {
                    self.pop_scratch.clear();
                    if rx.pop_slice(&mut self.pop_scratch, DRAIN_BURST) == 0 {
                        break;
                    }
                    n += self.pop_scratch.len() as u64;
                    let msgs = std::mem::take(&mut self.pop_scratch);
                    for &msg in &msgs {
                        self.dispatch(msg, snap, now);
                    }
                    self.pop_scratch = msgs;
                }
            } else {
                while let Some(msg) = rx.try_pop() {
                    n += 1;
                    self.dispatch(msg, snap, now);
                }
            }
            self.req_rx[src] = Some(rx);
        }
        n
    }

    /// Packets admissible this iteration: the whole batch, or — under
    /// the overload gate — whatever the token-bucket arrival process
    /// has delivered into the bounded ingress queue, after head-drops.
    fn admit_limit(&mut self) -> usize {
        let Some(o) = self.overload.as_mut() else {
            return self.batch;
        };
        let now = Instant::now();
        let dt = now.duration_since(o.last).as_secs_f64();
        o.last = now;
        // Cap the bucket so a scheduler stall cannot convert into an
        // unbounded arrival burst.
        o.tokens = (o.tokens + dt * o.rate_pps).min(2.0 * o.capacity as f64);
        let arrivals = o.tokens as usize;
        o.tokens -= arrivals as f64;
        o.arrived = (o.arrived + arrivals).min(self.dests.len());
        let queued = o.arrived - self.pos;
        if queued > o.capacity {
            // Ingress overflow: head-drop the oldest queued packets.
            // They never complete and are excluded from the checksum —
            // drops are accounted, not silently forwarded.
            let excess = queued - o.capacity;
            self.pos += excess;
            self.report.ingress_dropped += excess as u64;
            if let Some(p) = &self.probe {
                p.add_dropped(excess as u64);
            }
        }
        (o.arrived - self.pos).min(self.batch)
    }

    fn admit_own(&mut self) -> u64 {
        let limit = self.admit_limit();
        let end = (self.pos + limit).min(self.dests.len());
        let n = (end - self.pos) as u64;
        if n == 0 {
            return 0;
        }
        let t0 = if self.capture_latency {
            Instant::now()
        } else {
            self.epoch
        };
        let (mut loc_hits, mut rem_hits) = (0u64, 0u64);
        if self.vector {
            // Batched probe pass with set prefetch; per lane it performs
            // the identical probe(+reserve on miss) sequence the scalar
            // arm below does, so cache state and statistics match
            // bit-for-bit — the speed comes from prefetch distance and
            // from not re-entering the probe machinery per packet.
            let mut probes = std::mem::take(&mut self.probe_scratch);
            probes.clear();
            self.cache
                .probe_batch(&self.dests[self.pos..end], &mut probes);
            for (i, lane) in probes.iter().enumerate() {
                match *lane {
                    BatchProbe::Hit { value, origin } => {
                        match origin {
                            Origin::Loc => loc_hits += 1,
                            Origin::Rem => rem_hits += 1,
                        }
                        self.complete(value);
                    }
                    BatchProbe::Waiting | BatchProbe::MissReserved | BatchProbe::MissUnrecorded => {
                        self.park(self.dests[self.pos + i], Waiter::Local { admitted: t0 });
                    }
                }
            }
            self.probe_scratch = probes;
        } else {
            for i in self.pos..end {
                let addr = self.dests[i];
                match self.cache.probe(addr) {
                    ProbeResult::Hit { value, origin } => {
                        match origin {
                            Origin::Loc => loc_hits += 1,
                            Origin::Rem => rem_hits += 1,
                        }
                        self.complete(value);
                    }
                    ProbeResult::HitWaiting => self.park(addr, Waiter::Local { admitted: t0 }),
                    ProbeResult::Miss => {
                        let _ = self.cache.reserve(addr);
                        self.park(addr, Waiter::Local { admitted: t0 });
                    }
                }
            }
        }
        if let Some(p) = &self.probe {
            p.record_admit(n, loc_hits + rem_hits);
        }
        // Hit-path latency: one timestamp pair per admit burst (a
        // per-packet clock read would dominate the very path being
        // measured); every hit in the burst books the burst's elapsed.
        if self.capture_latency {
            self.report.timestamp_pairs += 1;
            let dt = t0.elapsed().as_nanos() as u64;
            self.report.latency.loc_hit.record_n(dt, loc_hits);
            self.report.latency.rem_hit.record_n(dt, rem_hits);
        } else {
            let _ = (loc_hits, rem_hits);
        }
        self.pos = end;
        n
    }

    fn fe_flush(&mut self, snap: &Snapshot) {
        if self.fe_queue.is_empty() {
            return;
        }
        let addrs = std::mem::take(&mut self.fe_queue);
        self.results.clear();
        self.results.resize(addrs.len(), CountedLookup::MISS);
        let table = &snap.tables[self.lc];
        table.lookup_batch(&addrs, &mut self.results);
        self.report.fe_batches += 1;
        self.report.fe_lookups += addrs.len() as u64;
        let now = Instant::now();
        for (i, &addr) in addrs.iter().enumerate() {
            let res = self.results[i];
            if self.spot_check_every > 0 {
                self.fe_since_check += 1;
                if self.fe_since_check >= self.spot_check_every {
                    self.fe_since_check = 0;
                    self.report.spot_checks += 1;
                    if table.lookup_counted(addr) != res {
                        self.report.spot_check_mismatches += 1;
                    }
                }
            }
            let nh = res.next_hop.map(|h| h.0);
            self.cache.fill_local(addr, nh, Origin::Loc);
            self.resolve(addr, nh, snap.version, now);
        }
        // Reuse the allocation for the next iteration's queue.
        self.fe_queue = addrs;
        self.fe_queue.clear();
    }

    /// Coalesce the per-destination event streams into outbox messages:
    /// greedy runs of consecutive same-kind events (same-version for
    /// replies) become one batch message each, up to
    /// [`BATCH_MSG_LANES`] lanes; singleton runs stay scalar. Runs
    /// never reorder across kinds, so each destination still receives
    /// the events in creation order.
    fn pack_events(&mut self) {
        for dst in 0..self.psi {
            if self.out_events[dst].is_empty() {
                continue;
            }
            let events = std::mem::take(&mut self.out_events[dst]);
            let src = self.lc as u16;
            let mut i = 0;
            while i < events.len() {
                match events[i] {
                    OutEvent::Req { addr } => {
                        let mut addrs = [0u32; BATCH_MSG_LANES];
                        let mut n = 0;
                        while i + n < events.len() && n < BATCH_MSG_LANES {
                            let OutEvent::Req { addr } = events[i + n] else {
                                break;
                            };
                            addrs[n] = addr;
                            n += 1;
                        }
                        let kind = if n == 1 {
                            MsgKind::Request
                        } else {
                            self.report.batch_requests_sent += 1;
                            MsgKind::BatchRequest(AddrBatch::from_slice(&addrs[..n]))
                        };
                        self.outbox.push_back(FabricMsg {
                            kind,
                            src,
                            dst: dst as u16,
                            addr,
                            packet_id: 0,
                            sent_at: 0,
                        });
                        i += n;
                    }
                    OutEvent::Rep {
                        addr,
                        packet_id,
                        nh,
                        version,
                    } => {
                        let mut pairs = [(0u32, None); BATCH_MSG_LANES];
                        let mut n = 0;
                        while i + n < events.len() && n < BATCH_MSG_LANES {
                            let OutEvent::Rep {
                                addr,
                                nh,
                                version: v,
                                ..
                            } = events[i + n]
                            else {
                                break;
                            };
                            if v != version {
                                break;
                            }
                            pairs[n] = (addr, nh);
                            n += 1;
                        }
                        let kind = if n == 1 {
                            MsgKind::Reply { next_hop: nh }
                        } else {
                            self.report.batch_replies_sent += 1;
                            MsgKind::BatchReply(ReplyBatch::from_pairs(&pairs[..n]))
                        };
                        self.outbox.push_back(FabricMsg {
                            kind,
                            src,
                            dst: dst as u16,
                            addr,
                            packet_id,
                            sent_at: version,
                        });
                        i += n;
                    }
                }
            }
            // Hand the allocation back for the next iteration.
            let mut events = events;
            events.clear();
            self.out_events[dst] = events;
        }
    }

    /// Try to deliver queued messages; a full destination ring defers
    /// its messages (in order) to the next iteration rather than block.
    /// Consecutive same-destination messages go out through one
    /// `push_slice` — one published head store per run instead of per
    /// message — with identical delivery order and deferral semantics
    /// to the scalar per-message loop.
    fn flush_outbox(&mut self) {
        self.pack_events();
        if let Some(f) = self.faults.as_mut() {
            // The adversary goes between the outbox and the wire: it
            // may hold messages back, clone them, or release ones held
            // on earlier iterations. Batch messages are faulted as
            // whole units, exactly like scalar ones.
            let queued = std::mem::take(&mut self.outbox);
            f.filter(queued, &mut self.outbox);
        }
        if self.outbox.is_empty() {
            return;
        }
        let mut blocked = vec![false; self.psi];
        let mut deferred = VecDeque::new();
        while let Some(msg) = self.outbox.pop_front() {
            let dst = msg.dst as usize;
            if self.dead_mask >> dst & 1 == 1 {
                // A fault injector can release held messages to an LC
                // that died after they were queued; they go nowhere.
                self.report.dead_letters += 1;
                continue;
            }
            if blocked[dst] {
                deferred.push_back(msg);
                continue;
            }
            // Gather the run of consecutive messages to this dst.
            self.push_scratch.clear();
            self.push_scratch.push(msg);
            while self.outbox.front().is_some_and(|m| m.dst as usize == dst) {
                let m = self.outbox.pop_front().expect("front checked");
                self.push_scratch.push(m);
            }
            let tx = self.req_tx[dst]
                .as_mut()
                .expect("messages are never addressed to self");
            let pushed = tx.push_slice(&self.push_scratch);
            let depth = tx.len() as u64;
            if depth > self.report.max_ring_depth {
                self.report.max_ring_depth = depth;
            }
            if pushed < self.push_scratch.len() {
                blocked[dst] = true;
                deferred.extend(self.push_scratch[pushed..].iter().copied());
            }
        }
        self.outbox = deferred;
    }

    fn maybe_mark_done(&mut self) {
        if !self.marked_done
            && self.pos >= self.dests.len()
            && self.pending.is_empty()
            && self.outbox.is_empty()
            && self.out_events.iter().all(|e| e.is_empty())
            && self.awaiting_reply.is_empty()
            && self.faults.as_ref().map_or(0, |f| f.pending()) == 0
        {
            self.marked_done = true;
            self.done.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Snapshot the cache statistics the first time this worker crosses
    /// the midpoint of its trace — the cold-start half the steady-state
    /// hit rate subtracts out.
    fn maybe_snapshot_cold(&mut self) {
        if !self.cold_recorded && self.pos * 2 >= self.dests.len() {
            self.cold_recorded = true;
            self.report.cache_cold = *self.cache.stats();
        }
    }

    fn step(&mut self, snap: &Snapshot) -> (u64, u64) {
        self.completed_this_iter = 0;
        self.sync_partition(snap);
        if self.maybe_die() {
            // A dead LC does no work; it only discards control traffic
            // so the control plane's bounded ring never wedges on it.
            while self.ctrl_rx.try_pop().is_some() {}
            return (0, 0);
        }
        let mut work = self.drain_ctrl();
        work += self.drain_fabric(snap);
        work += self.admit_own();
        self.maybe_snapshot_cold();
        if self.faults.as_mut().is_some_and(|f| f.roll_stall()) {
            // Mid-batch stall: the batch just admitted (probes,
            // reservations, parked waiters) and anything queued for the
            // FE or the fabric — including un-coalesced out-events —
            // is held as-is. The next unstalled iteration resumes
            // against whatever snapshot is then current — i.e. possibly
            // across a publication.
            return (work, self.completed_this_iter);
        }
        self.fe_flush(snap);
        self.flush_outbox();
        self.maybe_mark_done();
        (work, self.completed_this_iter)
    }

    fn finalize_report(&mut self) {
        self.report.lc = self.lc;
        self.report.cache = *self.cache.stats();
        if let Some(f) = &self.faults {
            self.report.faults = f.stats();
        }
    }
}

/// Bounded exponential backoff for empty SPSC polls: short spins keep
/// the reaction latency of a busy-wait while queues are merely bursty,
/// escalating to `yield_now` once the rings stay dry so the threads
/// that will refill them get scheduled.
///
/// Spinning only pays when the producer can run *concurrently* — so the
/// spin phase is enabled only on hosts with more cores than dataplane
/// threads. On an oversubscribed host every empty poll yields at once:
/// a worker alternating between a drained ring and one stray message
/// would otherwise keep resetting the backoff and burn its whole
/// scheduler quantum spinning, which stretches the writer's grace
/// rotations from one quantum to several (measured 3–4× worse churn
/// throughput on a single-core host).
struct Backoff {
    step: u32,
    spin_steps: u32,
}

impl Backoff {
    /// Empty polls spin (doubling) through this many steps, then yield.
    const SPIN_STEPS: u32 = 6;

    /// `threads` is the total the dataplane runs (workers + control);
    /// the spin phase needs at least that many cores.
    fn new(threads: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Backoff {
            step: 0,
            spin_steps: if cores >= threads {
                Self::SPIN_STEPS
            } else {
                0
            },
        }
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn snooze(&mut self) {
        if self.step < self.spin_steps {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

impl Worker {
    fn iterate(&mut self) -> (u64, u64) {
        let pin = self.reader.pin();
        self.core.step(&pin)
    }

    fn all_done(&self) -> bool {
        self.core.done.load(Ordering::SeqCst) >= self.core.psi
    }

    fn run_threaded(mut self) -> (WorkerReport, Vec<f64>) {
        let mut samples = Vec::new();
        let mut backoff = Backoff::new(self.core.psi + 1);
        loop {
            let t0 = Instant::now();
            let (work, completed) = self.iterate();
            if completed > 0 {
                samples.push(t0.elapsed().as_nanos() as f64 / completed as f64);
            }
            if self.core.marked_done && self.all_done() {
                break;
            }
            if work == 0 {
                backoff.snooze();
            } else {
                backoff.reset();
            }
        }
        self.into_results(samples)
    }

    fn into_results(mut self, samples: Vec<f64>) -> (WorkerReport, Vec<f64>) {
        self.core.finalize_report();
        (self.core.report, samples)
    }
}

// ---------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------

struct Control {
    part: Arc<Partitioning>,
    algorithm: LpmAlgorithm,
    /// Per-LC routing-table fragments, kept current with every ingested
    /// update — the rebuild source for non-incremental engines and the
    /// oracle for the final consistency check.
    per_lc_rib: Vec<RoutingTable>,
    /// Updates ingested but not yet reflected in *both* snapshot
    /// copies; `log[i]` has sequence number `base_seq + i`.
    log: Vec<Update>,
    base_seq: u64,
    next_seq: u64,
    writer: EpochWriter<Snapshot>,
    shadow: Option<Box<Snapshot>>,
    ctrl_tx: Vec<SpscProducer<CtrlMsg>>,
    mode: InvalidationMode,
    done: Arc<AtomicUsize>,
    psi: usize,
    /// Threaded mode spins on a full control ring (the worker will
    /// drain it); the deterministic schedule cannot, so capacity is
    /// sized to make overflow impossible and treated as a bug.
    blocking: bool,
    /// `false` forces a full fragment rebuild per touched LC (the
    /// benchmark's patch-vs-rebuild control arm).
    delta_patching: bool,
    report: ChurnReport,
    /// Shared failure flag the victim worker raises (`usize::MAX` =
    /// no failure).
    failed_flag: Arc<AtomicUsize>,
    /// Dead LCs — skipped by `broadcast` once the remap makes their
    /// death official.
    dead_mask: u64,
    /// Control-ring capacity; bounds how many targeted invalidations a
    /// remap may enqueue before falling back to a full flush.
    ctrl_cap: usize,
    /// What the remap did, once it ran.
    failover: Option<FailoverSummary>,
}

impl Control {
    /// Bring `snap` up to `next_seq`. The changed prefixes are first
    /// coalesced per LC (a batch touching one prefix twice, or many
    /// prefixes homed on one LC, yields one patch call with the deduped
    /// union — and at worst one rebuild — per LC), then dispatched to
    /// the engine's [`Lpm::apply_delta`] patch path. An engine that
    /// declines gets its fragment rebuilt from the post-update RIB.
    fn sync(&mut self, snap: &mut Snapshot) {
        let from = (snap.applied_seq - self.base_seq) as usize;
        let mut changed: Vec<Vec<Prefix>> = vec![Vec::new(); self.psi];
        for &u in &self.log[from..] {
            let p = update_prefix(u);
            for lc in self.part.lcs_of_prefix(p) {
                let per_lc = &mut changed[lc as usize];
                if !per_lc.contains(&p) {
                    per_lc.push(p);
                }
            }
        }
        for (lc, prefixes) in changed.iter().enumerate() {
            if prefixes.is_empty() {
                continue;
            }
            let patched = if self.delta_patching {
                snap.tables[lc].apply_delta(prefixes, &self.per_lc_rib[lc])
            } else {
                None
            };
            match patched {
                Some(stats) => {
                    self.report.delta_applies += 1;
                    self.report.delta_bytes_touched += stats.bytes_touched as u64;
                    self.report.delta_prefixes_applied += stats.prefixes_applied as u64;
                }
                None => {
                    self.report.rebuild_applies += 1;
                    snap.tables[lc] = ForwardingTable::build(self.algorithm, &self.per_lc_rib[lc]);
                }
            }
        }
        snap.applied_seq = self.next_seq;
    }

    fn broadcast(&mut self, msg: CtrlMsg) {
        for lc in 0..self.psi {
            if self.dead_mask >> lc & 1 == 1 {
                continue;
            }
            let tx = &mut self.ctrl_tx[lc];
            loop {
                match tx.try_push(msg) {
                    Ok(()) => {
                        self.report.invalidations_sent += 1;
                        break;
                    }
                    Err(_) => {
                        if self.done.load(Ordering::SeqCst) >= self.psi {
                            // Every worker finished; its cache no longer
                            // serves lookups, so the invalidation is moot.
                            break;
                        }
                        assert!(
                            self.blocking,
                            "control ring overflow in deterministic mode (capacity bug)"
                        );
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Apply one update batch and make it visible to the dataplane:
    /// RIB fragments → shadow patch/rebuild → RCU pointer swap. The
    /// recorded apply latency spans those three — the moment the swap
    /// lands, every new reader pin sees the updated table. The
    /// grace-period wait for the swapped-out snapshot resolves right
    /// after, *outside* the timed window but before the cache
    /// invalidations go out: readers race through their quiescent
    /// states with warm caches, which keeps the wait short on
    /// oversubscribed hosts (invalidating first would have them
    /// grinding through misses and remote round trips mid-grace).
    fn publish_batch(&mut self, batch: &[Update]) {
        let mut shadow = self.shadow.take().expect("shadow snapshot present");
        let t0 = Instant::now();
        for &u in batch {
            for lc in self.part.lcs_of_prefix(update_prefix(u)) {
                let rib = &mut self.per_lc_rib[lc as usize];
                match u {
                    Update::Announce(e) => {
                        rib.insert(e);
                    }
                    Update::Withdraw(p) => {
                        rib.remove(p);
                    }
                }
            }
            self.log.push(u);
            self.next_seq += 1;
        }
        self.sync(&mut shadow);
        shadow.version = self.writer.epoch() + 1;
        // Ping-pong: the swapped-out snapshot becomes the next shadow;
        // it lags by exactly this batch, which stays in the log.
        let lag = self.writer.peek().applied_seq;
        let retiring = self.writer.publish_deferred(shadow);
        self.report
            .apply_us
            .record(t0.elapsed().as_secs_f64() * 1e6);
        // Reclaim the swapped-out snapshot: the grace wait lands here,
        // off the apply-latency window and ahead of the invalidations.
        let t1 = Instant::now();
        self.shadow = Some(retiring.into_inner());
        self.report
            .reclaim_us
            .record(t1.elapsed().as_secs_f64() * 1e6);
        self.log.drain(..(lag - self.base_seq) as usize);
        self.base_seq = lag;
        let version = self.writer.epoch();
        match self.mode {
            InvalidationMode::FullFlush => self.broadcast(CtrlMsg::Flush { version }),
            InvalidationMode::Targeted => {
                for &u in batch {
                    let p = update_prefix(u);
                    self.broadcast(CtrlMsg::Invalidate {
                        bits: p.bits(),
                        len: p.len(),
                        version,
                    });
                }
            }
        }
        self.report.updates_applied += batch.len() as u64;
        self.report.publications += 1;
    }

    /// Threaded control loop: publish batches at the configured pace
    /// until the stream or the workers run out.
    fn run_paced(&mut self, updates: &[Update], per_pub: usize, pace_us: u64) {
        for batch in updates.chunks(per_pub.max(1)) {
            if self.done.load(Ordering::SeqCst) >= self.psi {
                break;
            }
            self.maybe_remap();
            self.publish_batch(batch);
            if pace_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(pace_us));
            }
        }
    }

    /// Headroom targeted remap invalidations must leave in the control
    /// ring (for a same-round churn publication plus slop); a moved set
    /// that cannot fit falls back to one full flush.
    const REMAP_CTRL_SLACK: usize = 128;

    /// Poll the shared failure flag and re-partition once when it is
    /// raised. Returns whether a remap ran this call.
    fn maybe_remap(&mut self) -> bool {
        if self.failover.is_some() {
            return false;
        }
        let dead = self.failed_flag.load(Ordering::SeqCst);
        if dead == usize::MAX {
            return false;
        }
        self.remap_failed(dead as u16);
        true
    }

    /// Patch one snapshot copy for the re-homed prefixes, the same
    /// apply-delta-or-rebuild dispatch `sync` uses for churn.
    fn apply_remap(&mut self, snap: &mut Snapshot, changed: &[Vec<Prefix>]) {
        for (lc, prefixes) in changed.iter().enumerate() {
            if prefixes.is_empty() {
                continue;
            }
            let patched = if self.delta_patching {
                snap.tables[lc].apply_delta(prefixes, &self.per_lc_rib[lc])
            } else {
                None
            };
            match patched {
                Some(stats) => {
                    self.report.delta_applies += 1;
                    self.report.delta_bytes_touched += stats.bytes_touched as u64;
                    self.report.delta_prefixes_applied += stats.prefixes_applied as u64;
                }
                None => {
                    self.report.rebuild_applies += 1;
                    snap.tables[lc] = ForwardingTable::build(self.algorithm, &self.per_lc_rib[lc]);
                }
            }
        }
    }

    /// Online re-partitioning after LC `dead` died, while packets keep
    /// flowing:
    ///
    /// 1. compute a successor [`Partitioning`] that re-homes the dead
    ///    LC's groups across the least-loaded survivors
    ///    ([`Partitioning::remap_without`]);
    /// 2. move the dead RIB fragment's routes into the survivors'
    ///    fragments (skipping routes already replicated there);
    /// 3. patch the shadow snapshot — pending churn log first, then the
    ///    re-homed prefixes via `apply_delta`-or-rebuild — stamp it
    ///    with the new partitioning and dead mask, and publish it
    ///    RCU-style (`publish_deferred`); workers adopt the new map on
    ///    their next pin and migrate their in-flight state
    ///    (`sync_partition`);
    /// 4. after the grace wait, patch the retiring copy identically
    ///    (the ping-pong log discipline cannot reproduce a remap, so
    ///    both copies are patched and the log fully drains);
    /// 5. invalidate the moved range at the new version — targeted
    ///    [`CtrlMsg::Invalidate`] per moved prefix when the set fits
    ///    the control-ring budget, one full flush otherwise. Replies
    ///    computed by the dead LC before it died carry pre-remap
    ///    versions, so the reply-version gate (`fill_versioned`) drops
    ///    them instead of caching stale values.
    fn remap_failed(&mut self, dead: u16) {
        let t0 = Instant::now();
        let dead_idx = dead as usize;
        let loads: Vec<usize> = self.per_lc_rib.iter().map(|r| r.len()).collect();
        let new_part = Arc::new(
            self.part
                .remap_without(dead, &self.per_lc_rib[dead_idx], &loads),
        );
        let moved = self.per_lc_rib[dead_idx].entries().to_vec();
        let mut changed: Vec<Vec<Prefix>> = vec![Vec::new(); self.psi];
        for e in &moved {
            for lc in new_part.lcs_of_prefix(e.prefix) {
                debug_assert_ne!(lc, dead, "remap re-homed a group onto the dead LC");
                let rib = &mut self.per_lc_rib[lc as usize];
                if rib.get(e.prefix).is_none() {
                    rib.insert(*e);
                    changed[lc as usize].push(e.prefix);
                }
            }
        }
        self.part = Arc::clone(&new_part);
        self.dead_mask |= 1 << dead;
        let mut shadow = self.shadow.take().expect("shadow snapshot present");
        self.sync(&mut shadow);
        self.apply_remap(&mut shadow, &changed);
        shadow.part = Arc::clone(&new_part);
        shadow.dead |= 1 << dead;
        shadow.version = self.writer.epoch() + 1;
        let retiring = self.writer.publish_deferred(shadow);
        let mut retiring = retiring.into_inner();
        self.sync(&mut retiring);
        self.apply_remap(&mut retiring, &changed);
        retiring.part = Arc::clone(&new_part);
        retiring.dead |= 1 << dead;
        self.shadow = Some(retiring);
        // Both copies now reflect the whole log.
        self.log.clear();
        self.base_seq = self.next_seq;
        self.per_lc_rib[dead_idx] = RoutingTable::from_entries([]);
        let version = self.writer.epoch();
        let targeted = self.mode == InvalidationMode::Targeted
            && moved.len() + Self::REMAP_CTRL_SLACK <= self.ctrl_cap;
        if targeted {
            for e in &moved {
                self.broadcast(CtrlMsg::Invalidate {
                    bits: e.prefix.bits(),
                    len: e.prefix.len(),
                    version,
                });
            }
        } else {
            self.broadcast(CtrlMsg::Flush { version });
        }
        self.failover = Some(FailoverSummary {
            dead_lc: dead,
            moved_prefixes: moved.len() as u64,
            remap_us: t0.elapsed().as_secs_f64() * 1e6,
            targeted,
            invalidations_per_lc: if targeted { moved.len() as u64 } else { 1 },
        });
    }

    /// Threaded failover watch: after any churn stream finishes, keep
    /// polling the failure flag until every worker is done (survivors
    /// with requests in flight to the victim cannot finish until the
    /// remap re-homes them).
    fn watch_failover(&mut self) {
        while self.done.load(Ordering::SeqCst) < self.psi {
            if !self.maybe_remap() {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }

    /// Sample the published tables against the per-LC RIB oracle (each
    /// address checked at its home LC, where lookups happen).
    fn final_check(&mut self, samples: usize, seed: u64) {
        let mut x = seed | 1;
        for _ in 0..samples {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = (x as u32) ^ ((x >> 32) as u32);
            let lc = self.part.home_of(addr) as usize;
            let expect = self.per_lc_rib[lc].longest_match(addr).map(|e| e.next_hop);
            let got = self.writer.peek().tables[lc].lookup(addr);
            self.report.final_checks += 1;
            if expect != got {
                self.report.final_mismatches += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Run orchestration
// ---------------------------------------------------------------------

/// Run the dataplane over `traces` (trace `i % traces.len()` drives
/// worker `i`; each trace is consumed once) against `table`.
pub fn run(table: &RoutingTable, traces: &[Trace], cfg: &DataplaneConfig) -> DataplaneReport {
    let psi = cfg.workers;
    assert!(psi >= 1, "need at least one worker");
    assert!(!traces.is_empty(), "need at least one trace");
    assert!(
        traces.iter().all(|t| !t.is_empty()),
        "traces must be non-empty"
    );
    if let Some(plan) = &cfg.failover {
        assert!(psi >= 2, "failover needs at least one survivor");
        assert!((plan.lc as usize) < psi, "failover victim out of range");
        assert!(psi <= 64, "the dead-LC mask holds at most 64 workers");
    }
    if let Some(o) = &cfg.overload {
        assert!(
            o.offered_pps > 0.0 && o.ingress_capacity > 0,
            "overload needs a positive rate and capacity"
        );
    }

    let bits = select_bits(table, eta_for(psi));
    let part = Arc::new(Partitioning::new(table, bits, psi));
    let per_lc_rib = part.forwarding_tables(table);
    let build = |version: u64| {
        Box::new(Snapshot {
            tables: per_lc_rib
                .iter()
                .map(|f| ForwardingTable::build(cfg.algorithm, f))
                .collect(),
            applied_seq: 0,
            version,
            part: Arc::clone(&part),
            dead: 0,
        })
    };
    let (writer, readers) = epoch_table(build(0), psi);
    let shadow = build(0);

    // Fabric rings: one SPSC ring per ordered worker pair.
    let mut tx_mat: Vec<Vec<Option<SpscProducer<FabricMsg>>>> =
        (0..psi).map(|_| (0..psi).map(|_| None).collect()).collect();
    let mut rx_mat: Vec<Vec<Option<SpscConsumer<FabricMsg>>>> =
        (0..psi).map(|_| (0..psi).map(|_| None).collect()).collect();
    for src in 0..psi {
        for dst in 0..psi {
            if src != dst {
                let (tx, rx) = spsc_ring(cfg.ring_capacity.max(2));
                tx_mat[src][dst] = Some(tx);
                rx_mat[dst][src] = Some(rx);
            }
        }
    }

    // Control rings, sized so one publication's worth of targeted
    // invalidations always fits (the deterministic schedule cannot spin
    // on a full ring).
    let per_pub = cfg
        .churn
        .as_ref()
        .map(|c| c.updates_per_publication)
        .unwrap_or(0);
    let mut ctrl_cap = cfg.ring_capacity.max(2 * per_pub + 8);
    if let Some(plan) = &cfg.failover {
        // A targeted remap enqueues one invalidation per moved prefix;
        // size the ring so the deterministic schedule can absorb the
        // burst (plus a same-round publication) without overflowing.
        let fragment = per_lc_rib[plan.lc as usize].len();
        ctrl_cap = ctrl_cap.max(fragment + 2 * per_pub + 2 * Control::REMAP_CTRL_SLACK);
    }
    let mut ctrl_tx = Vec::with_capacity(psi);
    let mut ctrl_rx = Vec::with_capacity(psi);
    for _ in 0..psi {
        let (tx, rx) = spsc_ring(ctrl_cap);
        ctrl_tx.push(tx);
        ctrl_rx.push(rx);
    }

    let done = Arc::new(AtomicUsize::new(0));
    let failed_flag = Arc::new(AtomicUsize::new(usize::MAX));
    let now = Instant::now();
    let mut workers: Vec<Worker> = Vec::with_capacity(psi);
    for (lc, reader) in readers.into_iter().enumerate() {
        workers.push(Worker {
            reader,
            core: WorkerCore {
                lc,
                psi,
                part: Arc::clone(&part),
                cache: VersionedCache::new(LrCache::new(cfg.cache.clone())),
                dests: traces[lc % traces.len()].destinations_shared(),
                pos: 0,
                batch: cfg.batch.max(1),
                req_tx: std::mem::take(&mut tx_mat[lc]),
                req_rx: std::mem::take(&mut rx_mat[lc]),
                ctrl_rx: ctrl_rx.remove(0),
                outbox: VecDeque::new(),
                pending: HashMap::new(),
                fe_queue: Vec::new(),
                results: Vec::new(),
                awaiting_reply: HashSet::new(),
                faults: cfg.faults.as_ref().map(|p| FaultInjector::new(p, lc)),
                spot_check_every: cfg.spot_check_every,
                fe_since_check: 0,
                report: WorkerReport::default(),
                done: Arc::clone(&done),
                marked_done: false,
                completed_this_iter: 0,
                vector: cfg.vector,
                out_events: (0..psi).map(|_| Vec::new()).collect(),
                probe_scratch: Vec::new(),
                pop_scratch: Vec::new(),
                push_scratch: Vec::new(),
                cold_recorded: false,
                capture_latency: cfg.capture_latency,
                epoch: now,
                failover: cfg.failover,
                failed: false,
                failed_flag: Arc::clone(&failed_flag),
                dead_mask: 0,
                overload: cfg.overload.map(|o| OverloadState {
                    rate_pps: o.offered_pps,
                    capacity: o.ingress_capacity,
                    tokens: 0.0,
                    last: now,
                    arrived: 0,
                }),
                probe: cfg.probe.clone(),
            },
        });
    }

    let mut control = Control {
        part: Arc::clone(&part),
        algorithm: cfg.algorithm,
        per_lc_rib,
        log: Vec::new(),
        base_seq: 0,
        next_seq: 0,
        writer,
        shadow: Some(shadow),
        ctrl_tx,
        mode: cfg.invalidation,
        done: Arc::clone(&done),
        psi,
        blocking: !cfg.deterministic,
        delta_patching: cfg.delta_patching,
        report: ChurnReport::default(),
        failed_flag,
        dead_mask: 0,
        ctrl_cap,
        failover: None,
    };

    let updates = cfg.churn.as_ref().map(|c| {
        update_stream(
            table,
            &UpdateStreamConfig {
                count: c.updates,
                withdraw_fraction: c.withdraw_fraction,
                seed: cfg.seed ^ 0x5EED_CAFE,
            },
        )
        .0
    });

    let t0 = Instant::now();
    let (mut results, coherence, forced_publications, sweeps) = if cfg.deterministic {
        let (r, forced, sweeps) =
            run_deterministic(&mut workers, &mut control, updates.as_deref(), cfg);
        // Post-quiesce coherence sweep: the trailing publications left
        // their invalidations queued in the control rings, so drain
        // those first; then every entry still resident in any cache
        // must agree with the control plane's RIB oracle — targeted
        // invalidation plus the reply-version gate must leave no entry
        // covered by an updated prefix. A failed worker's cache froze
        // at its death and stopped receiving invalidations, so it is
        // out of the sweep (it serves no lookups either).
        let mut entries_checked = 0u64;
        let mut mismatches = 0u64;
        for w in workers.iter_mut().filter(|w| !w.core.failed) {
            w.core.drain_ctrl();
            for (addr, value) in w.core.cache.entries() {
                let home = control.part.home_of(addr) as usize;
                let expect = control.per_lc_rib[home]
                    .longest_match(addr)
                    .map(|e| e.next_hop.0);
                entries_checked += 1;
                if value != expect {
                    mismatches += 1;
                }
            }
        }
        (
            r,
            Some(CoherenceSummary {
                entries_checked,
                mismatches,
            }),
            forced,
            sweeps,
        )
    } else {
        let r = run_threaded(workers, &mut control, updates.as_deref(), cfg);
        (r, None, 0, None)
    };
    let elapsed = t0.elapsed();

    let mut report = DataplaneReport {
        deterministic: cfg.deterministic,
        elapsed,
        ..Default::default()
    };
    let mut all_samples = Vec::new();
    results.sort_by_key(|(w, _)| w.lc);
    for (w, samples) in results {
        all_samples.extend(samples);
        report.workers.push(w);
    }
    report.tail = TailSummary::from_samples(all_samples);
    if cfg.churn.is_some() {
        control.final_check(1_000, cfg.seed ^ 0xF1A1);
        report.churn = Some(control.report.clone());
    }
    report.coherence = coherence;
    report.failover = control.failover;
    report.sweeps = sweeps;
    if let Some(plan) = &cfg.faults {
        let mut fr = FaultReport {
            seed: plan.seed,
            forced_publications,
            ..Default::default()
        };
        for w in &report.workers {
            fr.delayed += w.faults.delayed;
            fr.dropped_retransmitted += w.faults.dropped_retransmitted;
            fr.duplicated += w.faults.duplicated;
            fr.stalls += w.faults.stalls;
            fr.duplicate_replies += w.duplicate_replies;
        }
        report.faults = Some(fr);
    }
    report
}

fn run_threaded(
    workers: Vec<Worker>,
    control: &mut Control,
    updates: Option<&[Update]>,
    cfg: &DataplaneConfig,
) -> Vec<(WorkerReport, Vec<f64>)> {
    std::thread::scope(|s| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|w| s.spawn(move || w.run_threaded()))
            .collect();
        if let Some(updates) = updates {
            let churn = cfg.churn.as_ref().expect("updates imply churn config");
            control.run_paced(updates, churn.updates_per_publication, churn.pace_us);
        }
        if cfg.failover.is_some() {
            // Survivors with requests in flight to the victim cannot
            // finish until the control plane re-homes them.
            control.watch_failover();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// One mid-run invariant sweep (deterministic soak runs): drain each
/// live worker's control ring, then compare every resident cache entry
/// against the control plane's per-LC RIB oracle. Sound between rounds:
/// after the drain, any resident entry either postdates every processed
/// invalidation covering it or was never covered — both must match the
/// oracle.
fn sweep_caches(workers: &mut [Worker], control: &Control, summary: &mut SweepSummary) {
    summary.sweeps += 1;
    for w in workers.iter_mut().filter(|w| !w.core.failed) {
        w.core.drain_ctrl();
        for (addr, value) in w.core.cache.entries() {
            let home = control.part.home_of(addr) as usize;
            let expect = control.per_lc_rib[home]
                .longest_match(addr)
                .map(|e| e.next_hop.0);
            summary.entries_checked += 1;
            if value != expect {
                summary.mismatches += 1;
            }
        }
    }
}

/// What one deterministic run returns: the per-worker reports with
/// their publication-tail samples, the forced-publication count, and
/// the coherence-sweep summary when `sweep_every` was set.
type DeterministicOutcome = (Vec<(WorkerReport, Vec<f64>)>, u64, Option<SweepSummary>);

fn run_deterministic(
    workers: &mut [Worker],
    control: &mut Control,
    updates: Option<&[Update]>,
    cfg: &DataplaneConfig,
) -> DeterministicOutcome {
    let psi = workers.len();
    let done = Arc::clone(&workers[0].core.done);
    // Adversarial snapshot swaps: a seeded coin decides, per round,
    // whether to force an extra (no-update) publication right before
    // the workers run — an epoch bump at a schedule point the paced
    // mode would rarely produce.
    let mut forced_rng = cfg
        .faults
        .as_ref()
        .filter(|p| p.forced_publication_per_mille > 0)
        .map(|p| {
            (
                SmallRng::seed_from_u64(p.seed ^ 0xF0CE_D5AB),
                p.forced_publication_per_mille,
            )
        });
    let mut forced_publications = 0u64;
    // Spread publications evenly over the rounds the longest trace
    // needs, so churn overlaps forwarding deterministically.
    let mut batches: VecDeque<&[Update]> = match (updates, cfg.churn.as_ref()) {
        (Some(u), Some(c)) => u.chunks(c.updates_per_publication.max(1)).collect(),
        _ => VecDeque::new(),
    };
    let longest = workers
        .iter()
        .map(|w| w.core.dests.len())
        .max()
        .unwrap_or(0);
    let total_rounds = longest.div_ceil(cfg.batch.max(1)).max(1);
    let publish_every = (total_rounds / (batches.len() + 1)).max(1);

    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); psi];
    let mut sweeps = (cfg.sweep_every > 0).then(SweepSummary::default);
    let mut round = 0usize;
    let round_cap = 1000 * total_rounds + 10_000;
    while done.load(Ordering::SeqCst) < psi {
        round += 1;
        assert!(
            round <= round_cap,
            "deterministic schedule failed to quiesce"
        );
        control.maybe_remap();
        if let Some(s) = sweeps.as_mut() {
            if round.is_multiple_of(cfg.sweep_every) {
                sweep_caches(workers, control, s);
            }
        }
        if !batches.is_empty() && round.is_multiple_of(publish_every) {
            let batch = batches.pop_front().expect("non-empty");
            control.publish_batch(batch);
        }
        if let Some((rng, per_mille)) = forced_rng.as_mut() {
            if rng.gen_range(0u16..1000) < *per_mille {
                control.publish_batch(&[]);
                forced_publications += 1;
            }
        }
        for (i, w) in workers.iter_mut().enumerate() {
            let t0 = Instant::now();
            let (_, completed) = w.iterate();
            if completed > 0 {
                samples[i].push(t0.elapsed().as_nanos() as f64 / completed as f64);
            }
        }
    }
    // Publish whatever churn remains so the final table reflects the
    // whole stream (mirrors the paced mode finishing its stream).
    while let Some(batch) = batches.pop_front() {
        control.publish_batch(batch);
    }
    let results = workers
        .iter_mut()
        .map(|w| {
            w.core.finalize_report();
            (
                w.core.report.clone(),
                std::mem::take(&mut samples[w.core.lc]),
            )
        })
        .collect();
    (results, forced_publications, sweeps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::synth;
    use spal_traffic::{preset, PresetName, TracePreset};

    fn small_setup(psi: usize, packets: usize) -> (RoutingTable, Vec<Trace>) {
        let table = synth::small(11);
        let p = TracePreset {
            distinct: 400,
            ..preset(PresetName::D75)
        };
        let traces = p.generate(&table, psi * packets, 5).split(psi);
        (table, traces)
    }

    fn oracle_checksum(table: &RoutingTable, traces: &[Trace]) -> (u64, u64) {
        let mut packets = 0u64;
        let mut sum = 0u64;
        for t in traces {
            for &addr in t.destinations() {
                packets += 1;
                sum = sum.wrapping_add(
                    table
                        .longest_match(addr)
                        .map(|e| e.next_hop.0 as u64 + 1)
                        .unwrap_or(0),
                );
            }
        }
        (packets, sum)
    }

    #[test]
    fn deterministic_single_worker_matches_oracle() {
        let (table, traces) = small_setup(1, 3_000);
        let cfg = DataplaneConfig {
            workers: 1,
            deterministic: true,
            cache: LrCacheConfig::paper(256),
            ..Default::default()
        };
        let report = run(&table, &traces, &cfg);
        let (packets, sum) = oracle_checksum(&table, &traces);
        assert_eq!(report.total_packets(), packets);
        assert_eq!(report.checksum(), sum);
        assert_eq!(report.spot_check_mismatches(), 0);
        assert!(report.workers[0].remote_requests == 0);
    }

    #[test]
    fn deterministic_multi_worker_matches_oracle_and_shares_results() {
        let (table, traces) = small_setup(4, 2_000);
        let cfg = DataplaneConfig {
            workers: 4,
            deterministic: true,
            cache: LrCacheConfig::paper(256),
            ..Default::default()
        };
        let report = run(&table, &traces, &cfg);
        let (packets, sum) = oracle_checksum(&table, &traces);
        assert_eq!(report.total_packets(), packets);
        assert_eq!(report.checksum(), sum);
        assert_eq!(report.spot_check_mismatches(), 0);
        // Cross-LC traffic exists and produces REM-origin cache entries.
        let remote: u64 = report.workers.iter().map(|w| w.remote_requests).sum();
        let served: u64 = report.workers.iter().map(|w| w.remote_served).sum();
        assert!(remote > 0, "expected cross-LC requests");
        assert_eq!(
            remote,
            report
                .workers
                .iter()
                .map(|w| w.replies_received)
                .sum::<u64>()
        );
        assert_eq!(remote, served);
        assert!(report.rem_share() > 0.0);
    }

    #[test]
    fn deterministic_runs_are_reproducible() {
        let (table, traces) = small_setup(3, 1_000);
        let cfg = DataplaneConfig {
            workers: 3,
            deterministic: true,
            cache: LrCacheConfig::paper(128),
            ..Default::default()
        };
        let a = run(&table, &traces, &cfg);
        let b = run(&table, &traces, &cfg);
        assert_eq!(a.checksum(), b.checksum());
        for (wa, wb) in a.workers.iter().zip(&b.workers) {
            assert_eq!(wa.cache, wb.cache, "lc {} stats differ", wa.lc);
            assert_eq!(wa.fe_lookups, wb.fe_lookups);
            assert_eq!(wa.remote_requests, wb.remote_requests);
        }
    }

    #[test]
    fn scalar_mode_matches_oracle() {
        let (table, traces) = small_setup(4, 2_000);
        let cfg = DataplaneConfig {
            workers: 4,
            deterministic: true,
            vector: false,
            cache: LrCacheConfig::paper(256),
            ..Default::default()
        };
        let report = run(&table, &traces, &cfg);
        let (packets, sum) = oracle_checksum(&table, &traces);
        assert_eq!(report.total_packets(), packets);
        assert_eq!(report.checksum(), sum);
        assert_eq!(report.spot_check_mismatches(), 0);
        // Scalar mode never coalesces.
        assert!(report
            .workers
            .iter()
            .all(|w| w.batch_requests_sent == 0 && w.batch_replies_sent == 0));
    }

    #[test]
    fn latency_capture_off_skips_timestamp_reads() {
        let (table, traces) = small_setup(3, 2_000);
        let base = DataplaneConfig {
            workers: 3,
            deterministic: true,
            cache: LrCacheConfig::paper(256),
            ..Default::default()
        };
        let on = run(&table, &traces, &base);
        let off = run(
            &table,
            &traces,
            &DataplaneConfig {
                capture_latency: false,
                ..base
            },
        );
        // Forwarding is identical either way — measurement must not
        // perturb the datapath.
        assert_eq!(on.checksum(), off.checksum());
        assert_eq!(on.total_packets(), off.total_packets());
        // With capture on, every admit burst books one timestamp pair
        // and the histograms fill; with it off, the clock is never read
        // on the admit path and the histograms stay empty.
        let pairs_on: u64 = on.workers.iter().map(|w| w.timestamp_pairs).sum();
        assert!(pairs_on > 0, "capture on recorded no timestamp pairs");
        assert!(on.latency_paths().all().count() > 0);
        let pairs_off: u64 = off.workers.iter().map(|w| w.timestamp_pairs).sum();
        assert_eq!(pairs_off, 0, "capture off still read the clock");
        assert_eq!(off.latency_paths().all().count(), 0);
    }

    /// The bit-stability contract: in a deterministic faultless run the
    /// two modes perform identical per-address cache/FE/fabric
    /// operation sequences, so the canonical reports must match
    /// byte-for-byte — only the message framing differs.
    #[test]
    fn vector_and_scalar_canonical_reports_match() {
        let (table, traces) = small_setup(3, 2_000);
        let base = DataplaneConfig {
            workers: 3,
            deterministic: true,
            cache: LrCacheConfig::paper(256),
            churn: Some(ChurnConfig {
                updates: 120,
                updates_per_publication: 20,
                withdraw_fraction: 0.3,
                pace_us: 0,
            }),
            seed: 7,
            ..Default::default()
        };
        let vector = run(&table, &traces, &base);
        let scalar = run(
            &table,
            &traces,
            &DataplaneConfig {
                vector: false,
                ..base
            },
        );
        assert_eq!(vector.canonical_json(), scalar.canonical_json());
        // And the vector run actually coalesced something, or the
        // equivalence proved nothing about batch framing.
        let batched: u64 = vector
            .workers
            .iter()
            .map(|w| w.batch_requests_sent + w.batch_replies_sent)
            .sum();
        assert!(batched > 0, "no message was ever coalesced");
    }

    #[test]
    fn threaded_run_matches_oracle() {
        let (table, traces) = small_setup(4, 2_000);
        let cfg = DataplaneConfig {
            workers: 4,
            cache: LrCacheConfig::paper(256),
            ..Default::default()
        };
        let report = run(&table, &traces, &cfg);
        let (packets, sum) = oracle_checksum(&table, &traces);
        assert_eq!(report.total_packets(), packets);
        assert_eq!(report.checksum(), sum);
        assert_eq!(report.spot_check_mismatches(), 0);
    }
}
