//! The version-gated LR-cache: the coherence discipline that makes
//! remote fills safe under concurrent table publication.
//!
//! Replies crossing the fabric carry the table version (`sent_at`) they
//! were computed against. The cache tracks the latest publication
//! version whose invalidations it has processed; a reply older than
//! that may carry a result the invalidation was meant to kill, so it is
//! **never cached** — the waiting entry is evicted instead and the
//! packet completes with a one-off stale delivery, exactly as on a real
//! router. This module isolates that decision (previously inlined in
//! the worker) so it can be interleaving-tested exhaustively with
//! [`spal_check::interleave`] from the ordinary test suite.

use spal_cache::{
    BatchProbe, CacheAddr, FillOutcome, LrCache, Origin, ProbeResult, ReserveOutcome,
};

/// What happened to a version-stamped fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionedFill {
    /// The result was current (`sent_at >=` last processed
    /// invalidation) and went into the cache.
    Cached(FillOutcome),
    /// The result predated a processed invalidation: the waiting entry
    /// was evicted and nothing was cached.
    StaleDropped,
}

/// An [`LrCache`] plus the invalidation-version gate.
#[derive(Debug)]
pub struct VersionedCache<V, A: CacheAddr = u32> {
    cache: LrCache<V, A>,
    /// Latest publication version whose invalidations were processed.
    inval_version: u64,
}

impl<V: Copy + Eq + std::fmt::Debug, A: CacheAddr> VersionedCache<V, A> {
    /// Wrap a cache; no invalidations processed yet (version 0).
    pub fn new(cache: LrCache<V, A>) -> Self {
        VersionedCache {
            cache,
            inval_version: 0,
        }
    }

    /// Latest publication version whose invalidations were processed.
    pub fn version(&self) -> u64 {
        self.inval_version
    }

    /// See [`LrCache::probe`].
    pub fn probe(&mut self, addr: A) -> ProbeResult<V> {
        self.cache.probe(addr)
    }

    /// See [`LrCache::reserve`].
    pub fn reserve(&mut self, addr: A) -> ReserveOutcome {
        self.cache.reserve(addr)
    }

    /// See [`LrCache::probe_batch`] — the vector-mode probe pass with
    /// the miss-path reservation folded in, one [`BatchProbe`] per
    /// address. Versioning does not enter the probe path (only fills
    /// are gated), so this is a plain delegation.
    pub fn probe_batch(&mut self, addrs: &[A], out: &mut Vec<BatchProbe<V>>) {
        self.cache.probe_batch(addrs, out)
    }

    /// Process a full-flush invalidation published at `version`.
    pub fn apply_flush(&mut self, version: u64) {
        self.cache.flush();
        self.inval_version = self.inval_version.max(version);
    }

    /// Process a prefix-targeted invalidation published at `version`.
    pub fn apply_invalidation(&mut self, bits: A, len: u8, version: u64) -> usize {
        let dropped = self.cache.invalidate_covered(bits, len);
        self.inval_version = self.inval_version.max(version);
        dropped
    }

    /// Fill with a locally computed result. Local lookups run on the
    /// pinned snapshot *after* this worker drained its control ring, so
    /// they are current by construction and skip the gate.
    pub fn fill_local(&mut self, addr: A, value: V, origin: Origin) -> FillOutcome {
        self.cache.fill(addr, value, origin)
    }

    /// Fill with a result computed against table version `sent_at`
    /// (a fabric reply). Stale results are dropped, not cached, and the
    /// waiting entry (if any) is evicted so a later probe re-resolves.
    pub fn fill_versioned(
        &mut self,
        addr: A,
        value: V,
        origin: Origin,
        sent_at: u64,
    ) -> VersionedFill {
        if sent_at >= self.inval_version {
            VersionedFill::Cached(self.cache.fill(addr, value, origin))
        } else {
            self.cache.invalidate_covered(addr, A::BITS);
            VersionedFill::StaleDropped
        }
    }

    /// Every complete resident entry (see [`LrCache::entries`]).
    pub fn entries(&self) -> impl Iterator<Item = (A, V)> + '_ {
        self.cache.entries()
    }

    /// Statistics of the wrapped cache.
    pub fn stats(&self) -> &spal_cache::CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_cache::LrCacheConfig;

    fn vc() -> VersionedCache<u16> {
        VersionedCache::new(LrCache::new(LrCacheConfig {
            blocks: 16,
            assoc: 4,
            victim_blocks: 0,
            ..Default::default()
        }))
    }

    #[test]
    fn current_reply_is_cached() {
        let mut c = vc();
        c.apply_invalidation(0, 0, 3);
        assert_eq!(
            c.fill_versioned(1, 7, Origin::Rem, 3),
            VersionedFill::Cached(FillOutcome::Inserted)
        );
        assert!(matches!(c.probe(1), ProbeResult::Hit { value: 7, .. }));
    }

    #[test]
    fn stale_reply_is_dropped_and_evicts_waiter() {
        let mut c = vc();
        c.reserve(1);
        c.apply_invalidation(0xFF00_0000, 8, 5); // unrelated prefix; bumps version
        assert_eq!(
            c.fill_versioned(1, 7, Origin::Rem, 4),
            VersionedFill::StaleDropped
        );
        assert_eq!(c.probe(1), ProbeResult::Miss);
    }

    #[test]
    fn version_is_monotone() {
        let mut c = vc();
        c.apply_flush(4);
        c.apply_invalidation(0, 0, 2); // older publication; must not regress
        assert_eq!(c.version(), 4);
        assert_eq!(
            c.fill_versioned(1, 7, Origin::Rem, 3),
            VersionedFill::StaleDropped
        );
    }
}
