//! The multi-threaded SPAL runtime over IPv6 — the 128-bit mirror of
//! [`crate::runtime`].
//!
//! ψ LC **workers** each own one ROT-partition [`ForwardingTable6`]
//! (read through the epoch layer) and one local 128-bit-keyed LR-cache,
//! and exchange home-LC request/reply [`FabricMsg<u128>`]s over bounded
//! lock-free SPSC rings — including the vector-mode coalescing of up to
//! [`BATCH_MSG_LANES`] addresses per message. A **control plane**
//! consumes a v6 BGP update stream, patches a shadow snapshot through
//! each engine's [`Lpm6::apply_delta`] (falling back to a per-LC
//! fragment rebuild when SHIP declines), publishes RCU-style, and
//! broadcasts full-flush or prefix-targeted cache invalidations.
//!
//! The v4 runtime's operational extras (fault injection, LC failover,
//! overload admission, live probes) are deliberately not mirrored here;
//! the forwarding core — W-bit parking, request/reply coalescing,
//! version-gated fills, targeted invalidation, deterministic and
//! threaded modes — is identical, and the per-address semantics are
//! oracle-checked the same way.

use crate::epoch::{epoch_table, EpochReader, EpochWriter};
use crate::report::{ChurnReport, CoherenceSummary, DataplaneReport, TailSummary, WorkerReport};
use crate::runtime::{ChurnConfig, InvalidationMode};
use crate::vcache::{VersionedCache, VersionedFill};
use spal_cache::{BatchProbe, LrCache, LrCacheConfig, Origin, ProbeResult};
use spal_core::bits::eta_for;
use spal_core::{select_bits6, ForwardingTable6, LpmAlgorithm6, Partitioning6};
use spal_fabric::{
    spsc_ring, AddrBatch, FabricMsg, MsgKind, ReplyBatch, SpscConsumer, SpscProducer,
    BATCH_MSG_LANES,
};
use spal_lpm::{CountedLookup, Lpm6};
use spal_rib::updates::UpdateStreamConfig;
use spal_rib::v6::{update_stream6, Prefix6, RoutingTable6, Update6};
use spal_traffic::Trace6;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one IPv6 dataplane run. A subset of
/// [`crate::runtime::DataplaneConfig`]: the forwarding/churn core
/// without the fault/failover/overload scenario knobs.
#[derive(Debug, Clone)]
pub struct Dataplane6Config {
    /// Number of LC worker threads ψ.
    pub workers: usize,
    /// IPv6 LPM structure each partition engine runs.
    pub algorithm: LpmAlgorithm6,
    /// Per-worker LR-cache configuration (keys are 128-bit).
    pub cache: LrCacheConfig,
    /// Packets a worker admits from its trace per iteration.
    pub batch: usize,
    /// Capacity of each fabric SPSC ring.
    pub ring_capacity: usize,
    /// Churn stream (`None` = static table).
    pub churn: Option<ChurnConfig>,
    /// Cache-invalidation strategy after publications.
    pub invalidation: InvalidationMode,
    /// Cross-check every Nth FE result against scalar `lookup_counted`
    /// on the same pinned snapshot (0 = off).
    pub spot_check_every: u64,
    /// Run single-threaded with a fixed round-robin schedule.
    pub deterministic: bool,
    /// Seed for the churn stream and the final consistency sampler.
    pub seed: u64,
    /// Patch shadow tables via [`Lpm6::apply_delta`] (`true`) or
    /// rebuild every touched fragment per publication (`false`).
    pub delta_patching: bool,
    /// Vector mode: burst ring drains, batched cache probes, and
    /// per-destination coalescing of fabric messages.
    pub vector: bool,
}

impl Default for Dataplane6Config {
    fn default() -> Self {
        Dataplane6Config {
            workers: 4,
            algorithm: LpmAlgorithm6::Ship,
            cache: LrCacheConfig::paper(4096),
            batch: 32,
            ring_capacity: 1024,
            churn: None,
            invalidation: InvalidationMode::Targeted,
            spot_check_every: 64,
            deterministic: false,
            seed: 1,
            delta_patching: true,
            vector: true,
        }
    }
}

/// One published v6 forwarding state.
struct Snapshot6 {
    tables: Vec<ForwardingTable6>,
    /// Updates `< applied_seq` are reflected in `tables`.
    applied_seq: u64,
    /// Publication version (epoch at publish time); stamps replies.
    version: u64,
}

/// Control-plane → worker messages (v6 prefixes).
#[derive(Debug, Clone, Copy)]
enum CtrlMsg6 {
    Flush { version: u64 },
    Invalidate { bits: u128, len: u8, version: u64 },
}

#[derive(Debug, Clone, Copy)]
enum Waiter {
    /// One of this worker's own packets.
    Local { admitted: Instant },
    /// A remote request to answer once the address resolves.
    Remote { src: u16, packet_id: u64 },
}

/// One would-be fabric message awaiting per-destination coalescing
/// (see `runtime::OutEvent`; the event-stream ordering argument is
/// identical at 128 bits).
#[derive(Debug, Clone, Copy)]
enum OutEvent6 {
    Req {
        addr: u128,
    },
    Rep {
        addr: u128,
        packet_id: u64,
        nh: Option<u16>,
        version: u64,
    },
}

/// Fabric-ring drain burst in vector mode (messages per `pop_slice`).
const DRAIN_BURST: usize = 256;

fn update_prefix6(u: Update6) -> Prefix6 {
    match u {
        Update6::Announce(e) => e.prefix,
        Update6::Withdraw(p) => p,
    }
}

// ---------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------

struct WorkerCore6 {
    lc: usize,
    psi: usize,
    part: Arc<Partitioning6>,
    cache: VersionedCache<Option<u16>, u128>,
    dests: Arc<[u128]>,
    pos: usize,
    batch: usize,
    req_tx: Vec<Option<SpscProducer<FabricMsg<u128>>>>,
    req_rx: Vec<Option<SpscConsumer<FabricMsg<u128>>>>,
    ctrl_rx: SpscConsumer<CtrlMsg6>,
    outbox: VecDeque<FabricMsg<u128>>,
    /// One entry per distinct in-flight address (the W-bit discipline).
    pending: HashMap<u128, Vec<Waiter>>,
    fe_queue: Vec<u128>,
    results: Vec<CountedLookup>,
    awaiting_reply: HashSet<u128>,
    spot_check_every: u64,
    fe_since_check: u64,
    report: WorkerReport,
    done: Arc<AtomicUsize>,
    marked_done: bool,
    completed_this_iter: u64,
    vector: bool,
    out_events: Vec<Vec<OutEvent6>>,
    probe_scratch: Vec<BatchProbe<Option<u16>>>,
    pop_scratch: Vec<FabricMsg<u128>>,
    push_scratch: Vec<FabricMsg<u128>>,
    cold_recorded: bool,
}

struct Worker6 {
    reader: EpochReader<Snapshot6>,
    core: WorkerCore6,
}

impl WorkerCore6 {
    fn complete(&mut self, nh: Option<u16>) {
        self.report.packets += 1;
        self.report.next_hop_sum = self
            .report
            .next_hop_sum
            .wrapping_add(nh.map(|h| h as u64 + 1).unwrap_or(0));
        self.completed_this_iter += 1;
    }

    fn emit_reply(&mut self, dst: u16, addr: u128, packet_id: u64, nh: Option<u16>, version: u64) {
        if self.vector {
            self.out_events[dst as usize].push(OutEvent6::Rep {
                addr,
                packet_id,
                nh,
                version,
            });
        } else {
            self.outbox.push_back(FabricMsg {
                kind: MsgKind::Reply { next_hop: nh },
                src: self.lc as u16,
                dst,
                addr,
                packet_id,
                sent_at: version,
            });
        }
    }

    fn emit_request(&mut self, dst: u16, addr: u128) {
        if self.vector {
            self.out_events[dst as usize].push(OutEvent6::Req { addr });
        } else {
            self.outbox.push_back(FabricMsg {
                kind: MsgKind::Request,
                src: self.lc as u16,
                dst,
                addr,
                packet_id: 0,
                sent_at: 0,
            });
        }
    }

    /// Park a waiter on `addr`; the first waiter creates the job and
    /// routes it (local FE queue or remote request).
    fn park(&mut self, addr: u128, w: Waiter) {
        use std::collections::hash_map::Entry;
        match self.pending.entry(addr) {
            Entry::Occupied(mut e) => e.get_mut().push(w),
            Entry::Vacant(e) => {
                e.insert(vec![w]);
                let home = self.part.home_of(addr);
                if home as usize == self.lc {
                    self.fe_queue.push(addr);
                } else {
                    self.awaiting_reply.insert(addr);
                    self.report.remote_requests += 1;
                    self.emit_request(home, addr);
                }
            }
        }
    }

    /// Complete every waiter parked on `addr` with its resolved result.
    fn resolve(&mut self, addr: u128, nh: Option<u16>, version: u64, now: Instant) {
        if let Some(waiters) = self.pending.remove(&addr) {
            for w in waiters {
                match w {
                    Waiter::Local { admitted } => {
                        let ns = now.saturating_duration_since(admitted).as_nanos() as u64;
                        self.report.latency.miss.record(ns);
                        self.complete(nh);
                    }
                    Waiter::Remote { src, packet_id } => {
                        self.emit_reply(src, addr, packet_id, nh, version)
                    }
                }
            }
        }
    }

    fn drain_ctrl(&mut self) -> u64 {
        let mut n = 0;
        while let Some(msg) = self.ctrl_rx.try_pop() {
            n += 1;
            match msg {
                CtrlMsg6::Flush { version } => self.cache.apply_flush(version),
                CtrlMsg6::Invalidate { bits, len, version } => {
                    self.cache.apply_invalidation(bits, len, version);
                }
            }
        }
        n
    }

    fn handle_request_addr(&mut self, src: u16, addr: u128, packet_id: u64, snap: &Snapshot6) {
        debug_assert!(
            self.part.home_of(addr) as usize == self.lc,
            "request arrived at a non-home LC"
        );
        self.report.remote_served += 1;
        match self.cache.probe(addr) {
            ProbeResult::Hit { value, .. } => {
                self.emit_reply(src, addr, packet_id, value, snap.version)
            }
            ProbeResult::HitWaiting => self.park(addr, Waiter::Remote { src, packet_id }),
            ProbeResult::Miss => {
                let _ = self.cache.reserve(addr);
                self.park(addr, Waiter::Remote { src, packet_id });
            }
        }
    }

    fn handle_reply_addr(&mut self, addr: u128, nh: Option<u16>, sent_at: u64, now: Instant) {
        if !self.awaiting_reply.remove(&addr) {
            self.report.duplicate_replies += 1;
            return;
        }
        self.report.replies_received += 1;
        match self.cache.fill_versioned(addr, nh, Origin::Rem, sent_at) {
            VersionedFill::Cached(_) => {}
            VersionedFill::StaleDropped => self.report.stale_replies += 1,
        }
        self.resolve(addr, nh, sent_at, now);
    }

    /// Route one delivered message; batch messages unpack to the same
    /// per-address handlers, in lane order.
    fn dispatch(&mut self, msg: FabricMsg<u128>, snap: &Snapshot6, now: Instant) {
        match msg.kind {
            MsgKind::Request => self.handle_request_addr(msg.src, msg.addr, msg.packet_id, snap),
            MsgKind::Reply { next_hop } => {
                self.handle_reply_addr(msg.addr, next_hop, msg.sent_at, now)
            }
            MsgKind::BatchRequest(b) => {
                for &addr in b.addrs() {
                    self.handle_request_addr(msg.src, addr, 0, snap);
                }
            }
            MsgKind::BatchReply(b) => {
                for (addr, nh) in b.iter() {
                    self.handle_reply_addr(addr, nh, msg.sent_at, now);
                }
            }
        }
    }

    fn drain_fabric(&mut self, snap: &Snapshot6) -> u64 {
        let now = Instant::now();
        let mut n = 0;
        for src in 0..self.psi {
            let Some(mut rx) = self.req_rx[src].take() else {
                continue;
            };
            if self.vector {
                loop {
                    self.pop_scratch.clear();
                    if rx.pop_slice(&mut self.pop_scratch, DRAIN_BURST) == 0 {
                        break;
                    }
                    n += self.pop_scratch.len() as u64;
                    let msgs = std::mem::take(&mut self.pop_scratch);
                    for &msg in &msgs {
                        self.dispatch(msg, snap, now);
                    }
                    self.pop_scratch = msgs;
                }
            } else {
                while let Some(msg) = rx.try_pop() {
                    n += 1;
                    self.dispatch(msg, snap, now);
                }
            }
            self.req_rx[src] = Some(rx);
        }
        n
    }

    fn admit_own(&mut self) -> u64 {
        let end = (self.pos + self.batch).min(self.dests.len());
        let n = (end - self.pos) as u64;
        if n == 0 {
            return 0;
        }
        let t0 = Instant::now();
        let (mut loc_hits, mut rem_hits) = (0u64, 0u64);
        if self.vector {
            let mut probes = std::mem::take(&mut self.probe_scratch);
            probes.clear();
            self.cache
                .probe_batch(&self.dests[self.pos..end], &mut probes);
            for (i, lane) in probes.iter().enumerate() {
                match *lane {
                    BatchProbe::Hit { value, origin } => {
                        match origin {
                            Origin::Loc => loc_hits += 1,
                            Origin::Rem => rem_hits += 1,
                        }
                        self.complete(value);
                    }
                    BatchProbe::Waiting | BatchProbe::MissReserved | BatchProbe::MissUnrecorded => {
                        self.park(self.dests[self.pos + i], Waiter::Local { admitted: t0 });
                    }
                }
            }
            self.probe_scratch = probes;
        } else {
            for i in self.pos..end {
                let addr = self.dests[i];
                match self.cache.probe(addr) {
                    ProbeResult::Hit { value, origin } => {
                        match origin {
                            Origin::Loc => loc_hits += 1,
                            Origin::Rem => rem_hits += 1,
                        }
                        self.complete(value);
                    }
                    ProbeResult::HitWaiting => self.park(addr, Waiter::Local { admitted: t0 }),
                    ProbeResult::Miss => {
                        let _ = self.cache.reserve(addr);
                        self.park(addr, Waiter::Local { admitted: t0 });
                    }
                }
            }
        }
        self.report.timestamp_pairs += 1;
        let dt = t0.elapsed().as_nanos() as u64;
        self.report.latency.loc_hit.record_n(dt, loc_hits);
        self.report.latency.rem_hit.record_n(dt, rem_hits);
        self.pos = end;
        n
    }

    fn fe_flush(&mut self, snap: &Snapshot6) {
        if self.fe_queue.is_empty() {
            return;
        }
        let addrs = std::mem::take(&mut self.fe_queue);
        self.results.clear();
        self.results.resize(addrs.len(), CountedLookup::MISS);
        let table = &snap.tables[self.lc];
        table.lookup_batch(&addrs, &mut self.results);
        self.report.fe_batches += 1;
        self.report.fe_lookups += addrs.len() as u64;
        let now = Instant::now();
        for (i, &addr) in addrs.iter().enumerate() {
            let res = self.results[i];
            if self.spot_check_every > 0 {
                self.fe_since_check += 1;
                if self.fe_since_check >= self.spot_check_every {
                    self.fe_since_check = 0;
                    self.report.spot_checks += 1;
                    if table.lookup_counted(addr) != res {
                        self.report.spot_check_mismatches += 1;
                    }
                }
            }
            let nh = res.next_hop.map(|h| h.0);
            self.cache.fill_local(addr, nh, Origin::Loc);
            self.resolve(addr, nh, snap.version, now);
        }
        self.fe_queue = addrs;
        self.fe_queue.clear();
    }

    /// Coalesce the per-destination event streams into outbox messages
    /// (see `runtime::WorkerCore::pack_events`).
    fn pack_events(&mut self) {
        for dst in 0..self.psi {
            if self.out_events[dst].is_empty() {
                continue;
            }
            let events = std::mem::take(&mut self.out_events[dst]);
            let src = self.lc as u16;
            let mut i = 0;
            while i < events.len() {
                match events[i] {
                    OutEvent6::Req { addr } => {
                        let mut addrs = [0u128; BATCH_MSG_LANES];
                        let mut n = 0;
                        while i + n < events.len() && n < BATCH_MSG_LANES {
                            let OutEvent6::Req { addr } = events[i + n] else {
                                break;
                            };
                            addrs[n] = addr;
                            n += 1;
                        }
                        let kind = if n == 1 {
                            MsgKind::Request
                        } else {
                            self.report.batch_requests_sent += 1;
                            MsgKind::BatchRequest(AddrBatch::from_slice(&addrs[..n]))
                        };
                        self.outbox.push_back(FabricMsg {
                            kind,
                            src,
                            dst: dst as u16,
                            addr,
                            packet_id: 0,
                            sent_at: 0,
                        });
                        i += n;
                    }
                    OutEvent6::Rep {
                        addr,
                        packet_id,
                        nh,
                        version,
                    } => {
                        let mut pairs = [(0u128, None); BATCH_MSG_LANES];
                        let mut n = 0;
                        while i + n < events.len() && n < BATCH_MSG_LANES {
                            let OutEvent6::Rep {
                                addr,
                                nh,
                                version: v,
                                ..
                            } = events[i + n]
                            else {
                                break;
                            };
                            if v != version {
                                break;
                            }
                            pairs[n] = (addr, nh);
                            n += 1;
                        }
                        let kind = if n == 1 {
                            MsgKind::Reply { next_hop: nh }
                        } else {
                            self.report.batch_replies_sent += 1;
                            MsgKind::BatchReply(ReplyBatch::from_pairs(&pairs[..n]))
                        };
                        self.outbox.push_back(FabricMsg {
                            kind,
                            src,
                            dst: dst as u16,
                            addr,
                            packet_id,
                            sent_at: version,
                        });
                        i += n;
                    }
                }
            }
            let mut events = events;
            events.clear();
            self.out_events[dst] = events;
        }
    }

    /// Try to deliver queued messages; a full destination ring defers
    /// its messages (in order) to the next iteration rather than block.
    fn flush_outbox(&mut self) {
        self.pack_events();
        if self.outbox.is_empty() {
            return;
        }
        let mut blocked = vec![false; self.psi];
        let mut deferred = VecDeque::new();
        while let Some(msg) = self.outbox.pop_front() {
            let dst = msg.dst as usize;
            if blocked[dst] {
                deferred.push_back(msg);
                continue;
            }
            self.push_scratch.clear();
            self.push_scratch.push(msg);
            while self.outbox.front().is_some_and(|m| m.dst as usize == dst) {
                let m = self.outbox.pop_front().expect("front checked");
                self.push_scratch.push(m);
            }
            let tx = self.req_tx[dst]
                .as_mut()
                .expect("messages are never addressed to self");
            let pushed = tx.push_slice(&self.push_scratch);
            let depth = tx.len() as u64;
            if depth > self.report.max_ring_depth {
                self.report.max_ring_depth = depth;
            }
            if pushed < self.push_scratch.len() {
                blocked[dst] = true;
                deferred.extend(self.push_scratch[pushed..].iter().copied());
            }
        }
        self.outbox = deferred;
    }

    fn maybe_mark_done(&mut self) {
        if !self.marked_done
            && self.pos >= self.dests.len()
            && self.pending.is_empty()
            && self.outbox.is_empty()
            && self.out_events.iter().all(|e| e.is_empty())
            && self.awaiting_reply.is_empty()
        {
            self.marked_done = true;
            self.done.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn maybe_snapshot_cold(&mut self) {
        if !self.cold_recorded && self.pos * 2 >= self.dests.len() {
            self.cold_recorded = true;
            self.report.cache_cold = *self.cache.stats();
        }
    }

    fn step(&mut self, snap: &Snapshot6) -> (u64, u64) {
        self.completed_this_iter = 0;
        let mut work = self.drain_ctrl();
        work += self.drain_fabric(snap);
        work += self.admit_own();
        self.maybe_snapshot_cold();
        self.fe_flush(snap);
        self.flush_outbox();
        self.maybe_mark_done();
        (work, self.completed_this_iter)
    }

    fn finalize_report(&mut self) {
        self.report.lc = self.lc;
        self.report.cache = *self.cache.stats();
    }
}

/// Bounded exponential backoff for empty SPSC polls (see
/// `runtime::Backoff` for the oversubscription rationale).
struct Backoff {
    step: u32,
    spin_steps: u32,
}

impl Backoff {
    const SPIN_STEPS: u32 = 6;

    fn new(threads: usize) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Backoff {
            step: 0,
            spin_steps: if cores >= threads {
                Self::SPIN_STEPS
            } else {
                0
            },
        }
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn snooze(&mut self) {
        if self.step < self.spin_steps {
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
        } else {
            std::thread::yield_now();
        }
    }
}

impl Worker6 {
    fn iterate(&mut self) -> (u64, u64) {
        let pin = self.reader.pin();
        self.core.step(&pin)
    }

    fn all_done(&self) -> bool {
        self.core.done.load(Ordering::SeqCst) >= self.core.psi
    }

    fn run_threaded(mut self) -> (WorkerReport, Vec<f64>) {
        let mut samples = Vec::new();
        let mut backoff = Backoff::new(self.core.psi + 1);
        loop {
            let t0 = Instant::now();
            let (work, completed) = self.iterate();
            if completed > 0 {
                samples.push(t0.elapsed().as_nanos() as f64 / completed as f64);
            }
            if self.core.marked_done && self.all_done() {
                break;
            }
            if work == 0 {
                backoff.snooze();
            } else {
                backoff.reset();
            }
        }
        self.core.finalize_report();
        (self.core.report, samples)
    }
}

// ---------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------

struct Control6 {
    part: Arc<Partitioning6>,
    algorithm: LpmAlgorithm6,
    /// Per-LC v6 RIB fragments — the rebuild source for declined
    /// patches and the oracle for the final consistency check.
    per_lc_rib: Vec<RoutingTable6>,
    /// Updates ingested but not yet reflected in *both* snapshot
    /// copies; `log[i]` has sequence number `base_seq + i`.
    log: Vec<Update6>,
    base_seq: u64,
    next_seq: u64,
    writer: EpochWriter<Snapshot6>,
    shadow: Option<Box<Snapshot6>>,
    ctrl_tx: Vec<SpscProducer<CtrlMsg6>>,
    mode: InvalidationMode,
    done: Arc<AtomicUsize>,
    psi: usize,
    blocking: bool,
    delta_patching: bool,
    report: ChurnReport,
}

impl Control6 {
    /// Bring `snap` up to `next_seq`: changed prefixes coalesced per
    /// LC, dispatched to [`Lpm6::apply_delta`], fragment rebuilt from
    /// the post-update RIB on decline.
    fn sync(&mut self, snap: &mut Snapshot6) {
        let from = (snap.applied_seq - self.base_seq) as usize;
        let mut changed: Vec<Vec<Prefix6>> = vec![Vec::new(); self.psi];
        for &u in &self.log[from..] {
            let p = update_prefix6(u);
            for lc in self.part.lcs_of_prefix(p) {
                let per_lc = &mut changed[lc as usize];
                if !per_lc.contains(&p) {
                    per_lc.push(p);
                }
            }
        }
        for (lc, prefixes) in changed.iter().enumerate() {
            if prefixes.is_empty() {
                continue;
            }
            let patched = if self.delta_patching {
                snap.tables[lc].apply_delta(prefixes, &self.per_lc_rib[lc])
            } else {
                None
            };
            match patched {
                Some(stats) => {
                    self.report.delta_applies += 1;
                    self.report.delta_bytes_touched += stats.bytes_touched as u64;
                    self.report.delta_prefixes_applied += stats.prefixes_applied as u64;
                }
                None => {
                    self.report.rebuild_applies += 1;
                    snap.tables[lc] = ForwardingTable6::build(self.algorithm, &self.per_lc_rib[lc]);
                }
            }
        }
        snap.applied_seq = self.next_seq;
    }

    fn broadcast(&mut self, msg: CtrlMsg6) {
        for lc in 0..self.psi {
            let tx = &mut self.ctrl_tx[lc];
            loop {
                match tx.try_push(msg) {
                    Ok(()) => {
                        self.report.invalidations_sent += 1;
                        break;
                    }
                    Err(_) => {
                        if self.done.load(Ordering::SeqCst) >= self.psi {
                            break;
                        }
                        assert!(
                            self.blocking,
                            "control ring overflow in deterministic mode (capacity bug)"
                        );
                        std::thread::yield_now();
                    }
                }
            }
        }
    }

    /// Apply one update batch and make it visible to the dataplane
    /// (RIB fragments → shadow patch/rebuild → RCU swap → targeted or
    /// full-flush invalidation; the grace wait lands off the timed
    /// apply window, as in the v4 control plane).
    fn publish_batch(&mut self, batch: &[Update6]) {
        let mut shadow = self.shadow.take().expect("shadow snapshot present");
        let t0 = Instant::now();
        for &u in batch {
            for lc in self.part.lcs_of_prefix(update_prefix6(u)) {
                let rib = &mut self.per_lc_rib[lc as usize];
                match u {
                    Update6::Announce(e) => {
                        rib.insert(e);
                    }
                    Update6::Withdraw(p) => {
                        rib.remove(p);
                    }
                }
            }
            self.log.push(u);
            self.next_seq += 1;
        }
        self.sync(&mut shadow);
        shadow.version = self.writer.epoch() + 1;
        let lag = self.writer.peek().applied_seq;
        let retiring = self.writer.publish_deferred(shadow);
        self.report
            .apply_us
            .record(t0.elapsed().as_secs_f64() * 1e6);
        let t1 = Instant::now();
        self.shadow = Some(retiring.into_inner());
        self.report
            .reclaim_us
            .record(t1.elapsed().as_secs_f64() * 1e6);
        self.log.drain(..(lag - self.base_seq) as usize);
        self.base_seq = lag;
        let version = self.writer.epoch();
        match self.mode {
            InvalidationMode::FullFlush => self.broadcast(CtrlMsg6::Flush { version }),
            InvalidationMode::Targeted => {
                for &u in batch {
                    let p = update_prefix6(u);
                    self.broadcast(CtrlMsg6::Invalidate {
                        bits: p.bits(),
                        len: p.len(),
                        version,
                    });
                }
            }
        }
        self.report.updates_applied += batch.len() as u64;
        self.report.publications += 1;
    }

    fn run_paced(&mut self, updates: &[Update6], per_pub: usize, pace_us: u64) {
        for batch in updates.chunks(per_pub.max(1)) {
            if self.done.load(Ordering::SeqCst) >= self.psi {
                break;
            }
            self.publish_batch(batch);
            if pace_us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(pace_us));
            }
        }
    }

    /// Sample the published tables against the per-LC RIB oracle (each
    /// address checked at its home LC).
    fn final_check(&mut self, samples: usize, seed: u64) {
        let mut x = seed | 1;
        for i in 0..samples {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Half the probes land inside live prefixes, half are
            // uniform random (mostly misses).
            let addr = if i % 2 == 0 {
                let mut best = None;
                for rib in &self.per_lc_rib {
                    if !rib.is_empty() {
                        best = Some(rib.entries()[x as usize % rib.len()]);
                        break;
                    }
                }
                match best {
                    Some(e) => e.prefix.bits() | (x as u128),
                    None => (x as u128) << 64 | x.rotate_left(29) as u128,
                }
            } else {
                (x as u128) << 64 | x.rotate_left(29) as u128
            };
            let lc = self.part.home_of(addr) as usize;
            let expect = self.per_lc_rib[lc].longest_match(addr).map(|e| e.next_hop);
            let got = self.writer.peek().tables[lc].lookup(addr);
            self.report.final_checks += 1;
            if expect != got {
                self.report.final_mismatches += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Run orchestration
// ---------------------------------------------------------------------

/// Run the IPv6 dataplane over `traces` (trace `i % traces.len()`
/// drives worker `i`) against `table`.
pub fn run6(table: &RoutingTable6, traces: &[Trace6], cfg: &Dataplane6Config) -> DataplaneReport {
    let psi = cfg.workers;
    assert!(psi >= 1, "need at least one worker");
    assert!(!traces.is_empty(), "need at least one trace");
    assert!(
        traces.iter().all(|t| !t.is_empty()),
        "traces must be non-empty"
    );

    let bits = select_bits6(table, eta_for(psi));
    let part = Arc::new(Partitioning6::new(table, bits, psi));
    let per_lc_rib = part.forwarding_tables(table);
    let build = |version: u64| {
        Box::new(Snapshot6 {
            tables: per_lc_rib
                .iter()
                .map(|f| ForwardingTable6::build(cfg.algorithm, f))
                .collect(),
            applied_seq: 0,
            version,
        })
    };
    let (writer, readers) = epoch_table(build(0), psi);
    let shadow = build(0);

    // Fabric rings: one SPSC ring per ordered worker pair.
    let mut tx_mat: Vec<Vec<Option<SpscProducer<FabricMsg<u128>>>>> =
        (0..psi).map(|_| (0..psi).map(|_| None).collect()).collect();
    let mut rx_mat: Vec<Vec<Option<SpscConsumer<FabricMsg<u128>>>>> =
        (0..psi).map(|_| (0..psi).map(|_| None).collect()).collect();
    for src in 0..psi {
        for dst in 0..psi {
            if src != dst {
                let (tx, rx) = spsc_ring(cfg.ring_capacity.max(2));
                tx_mat[src][dst] = Some(tx);
                rx_mat[dst][src] = Some(rx);
            }
        }
    }

    // Control rings, sized so one publication's worth of targeted
    // invalidations always fits.
    let per_pub = cfg
        .churn
        .as_ref()
        .map(|c| c.updates_per_publication)
        .unwrap_or(0);
    let ctrl_cap = cfg.ring_capacity.max(2 * per_pub + 8);
    let mut ctrl_tx = Vec::with_capacity(psi);
    let mut ctrl_rx = Vec::with_capacity(psi);
    for _ in 0..psi {
        let (tx, rx) = spsc_ring(ctrl_cap);
        ctrl_tx.push(tx);
        ctrl_rx.push(rx);
    }

    let done = Arc::new(AtomicUsize::new(0));
    let mut workers: Vec<Worker6> = Vec::with_capacity(psi);
    for (lc, reader) in readers.into_iter().enumerate() {
        workers.push(Worker6 {
            reader,
            core: WorkerCore6 {
                lc,
                psi,
                part: Arc::clone(&part),
                cache: VersionedCache::new(LrCache::new(cfg.cache.clone())),
                dests: traces[lc % traces.len()].destinations_shared(),
                pos: 0,
                batch: cfg.batch.max(1),
                req_tx: std::mem::take(&mut tx_mat[lc]),
                req_rx: std::mem::take(&mut rx_mat[lc]),
                ctrl_rx: ctrl_rx.remove(0),
                outbox: VecDeque::new(),
                pending: HashMap::new(),
                fe_queue: Vec::new(),
                results: Vec::new(),
                awaiting_reply: HashSet::new(),
                spot_check_every: cfg.spot_check_every,
                fe_since_check: 0,
                report: WorkerReport::default(),
                done: Arc::clone(&done),
                marked_done: false,
                completed_this_iter: 0,
                vector: cfg.vector,
                out_events: (0..psi).map(|_| Vec::new()).collect(),
                probe_scratch: Vec::new(),
                pop_scratch: Vec::new(),
                push_scratch: Vec::new(),
                cold_recorded: false,
            },
        });
    }

    let mut control = Control6 {
        part: Arc::clone(&part),
        algorithm: cfg.algorithm,
        per_lc_rib,
        log: Vec::new(),
        base_seq: 0,
        next_seq: 0,
        writer,
        shadow: Some(shadow),
        ctrl_tx,
        mode: cfg.invalidation,
        done: Arc::clone(&done),
        psi,
        blocking: !cfg.deterministic,
        delta_patching: cfg.delta_patching,
        report: ChurnReport::default(),
    };

    let updates = cfg.churn.as_ref().map(|c| {
        update_stream6(
            table,
            &UpdateStreamConfig {
                count: c.updates,
                withdraw_fraction: c.withdraw_fraction,
                seed: cfg.seed ^ 0x5EED_CAF6,
            },
        )
        .0
    });

    let t0 = Instant::now();
    let (mut results, coherence) = if cfg.deterministic {
        let r = run_deterministic(&mut workers, &mut control, updates.as_deref(), cfg);
        // Post-quiesce coherence sweep: drain trailing invalidations,
        // then every resident cache entry must agree with the per-LC
        // RIB oracle.
        let mut entries_checked = 0u64;
        let mut mismatches = 0u64;
        for w in workers.iter_mut() {
            w.core.drain_ctrl();
            for (addr, value) in w.core.cache.entries() {
                let home = control.part.home_of(addr) as usize;
                let expect = control.per_lc_rib[home]
                    .longest_match(addr)
                    .map(|e| e.next_hop.0);
                entries_checked += 1;
                if value != expect {
                    mismatches += 1;
                }
            }
        }
        (
            r,
            Some(CoherenceSummary {
                entries_checked,
                mismatches,
            }),
        )
    } else {
        let r = run_threaded(workers, &mut control, updates.as_deref(), cfg);
        (r, None)
    };
    let elapsed = t0.elapsed();

    let mut report = DataplaneReport {
        deterministic: cfg.deterministic,
        elapsed,
        ..Default::default()
    };
    let mut all_samples = Vec::new();
    results.sort_by_key(|(w, _)| w.lc);
    for (w, samples) in results {
        all_samples.extend(samples);
        report.workers.push(w);
    }
    report.tail = TailSummary::from_samples(all_samples);
    if cfg.churn.is_some() {
        control.final_check(1_000, cfg.seed ^ 0xF1A6);
        report.churn = Some(control.report.clone());
    }
    report.coherence = coherence;
    report
}

fn run_threaded(
    workers: Vec<Worker6>,
    control: &mut Control6,
    updates: Option<&[Update6]>,
    cfg: &Dataplane6Config,
) -> Vec<(WorkerReport, Vec<f64>)> {
    std::thread::scope(|s| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|w| s.spawn(move || w.run_threaded()))
            .collect();
        if let Some(updates) = updates {
            let churn = cfg.churn.as_ref().expect("updates imply churn config");
            control.run_paced(updates, churn.updates_per_publication, churn.pace_us);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

fn run_deterministic(
    workers: &mut [Worker6],
    control: &mut Control6,
    updates: Option<&[Update6]>,
    cfg: &Dataplane6Config,
) -> Vec<(WorkerReport, Vec<f64>)> {
    let psi = workers.len();
    let done = Arc::clone(&workers[0].core.done);
    // Spread publications evenly over the rounds the longest trace
    // needs, so churn overlaps forwarding deterministically.
    let mut batches: VecDeque<&[Update6]> = match (updates, cfg.churn.as_ref()) {
        (Some(u), Some(c)) => u.chunks(c.updates_per_publication.max(1)).collect(),
        _ => VecDeque::new(),
    };
    let longest = workers
        .iter()
        .map(|w| w.core.dests.len())
        .max()
        .unwrap_or(0);
    let total_rounds = longest.div_ceil(cfg.batch.max(1)).max(1);
    let publish_every = (total_rounds / (batches.len() + 1)).max(1);

    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); psi];
    let mut round = 0usize;
    let round_cap = 1000 * total_rounds + 10_000;
    while done.load(Ordering::SeqCst) < psi {
        round += 1;
        assert!(
            round <= round_cap,
            "deterministic schedule failed to quiesce"
        );
        if !batches.is_empty() && round.is_multiple_of(publish_every) {
            let batch = batches.pop_front().expect("non-empty");
            control.publish_batch(batch);
        }
        for (i, w) in workers.iter_mut().enumerate() {
            let t0 = Instant::now();
            let (_, completed) = w.iterate();
            if completed > 0 {
                samples[i].push(t0.elapsed().as_nanos() as f64 / completed as f64);
            }
        }
    }
    // Publish whatever churn remains so the final table reflects the
    // whole stream.
    while let Some(batch) = batches.pop_front() {
        control.publish_batch(batch);
    }
    workers
        .iter_mut()
        .map(|w| {
            w.core.finalize_report();
            (
                w.core.report.clone(),
                std::mem::take(&mut samples[w.core.lc]),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spal_rib::v6::synthesize6_dfz;
    use spal_traffic::generate6;

    fn small_setup(psi: usize, packets: usize) -> (RoutingTable6, Vec<Trace6>) {
        let table = synthesize6_dfz(3_000, 11);
        let trace = generate6(&table, 400, psi * packets, 5);
        (table, trace.split(psi))
    }

    fn oracle_checksum(table: &RoutingTable6, traces: &[Trace6]) -> (u64, u64) {
        let mut packets = 0u64;
        let mut sum = 0u64;
        for t in traces {
            for &addr in t.destinations() {
                packets += 1;
                sum = sum.wrapping_add(
                    table
                        .longest_match(addr)
                        .map(|e| e.next_hop.0 as u64 + 1)
                        .unwrap_or(0),
                );
            }
        }
        (packets, sum)
    }

    fn checksum(report: &DataplaneReport) -> u64 {
        report
            .workers
            .iter()
            .fold(0u64, |acc, w| acc.wrapping_add(w.next_hop_sum))
    }

    #[test]
    fn deterministic_single_worker_matches_oracle() {
        let (table, traces) = small_setup(1, 3_000);
        let cfg = Dataplane6Config {
            workers: 1,
            deterministic: true,
            cache: LrCacheConfig::paper(256),
            ..Default::default()
        };
        let report = run6(&table, &traces, &cfg);
        let (packets, sum) = oracle_checksum(&table, &traces);
        assert_eq!(report.total_packets(), packets);
        assert_eq!(checksum(&report), sum);
        assert_eq!(report.workers[0].spot_check_mismatches, 0);
        assert!(report.workers[0].remote_requests == 0);
    }

    #[test]
    fn deterministic_multi_worker_matches_oracle_and_shares_results() {
        let (table, traces) = small_setup(4, 2_000);
        let cfg = Dataplane6Config {
            workers: 4,
            deterministic: true,
            cache: LrCacheConfig::paper(256),
            ..Default::default()
        };
        let report = run6(&table, &traces, &cfg);
        let (packets, sum) = oracle_checksum(&table, &traces);
        assert_eq!(report.total_packets(), packets);
        assert_eq!(checksum(&report), sum);
        assert!(report.workers.iter().all(|w| w.spot_check_mismatches == 0));
        let remote: u64 = report.workers.iter().map(|w| w.remote_requests).sum();
        let served: u64 = report.workers.iter().map(|w| w.remote_served).sum();
        assert!(remote > 0, "expected cross-LC requests");
        assert_eq!(remote, served);
        // Vector mode actually coalesced messages.
        let batched: u64 = report
            .workers
            .iter()
            .map(|w| w.batch_requests_sent + w.batch_replies_sent)
            .sum();
        assert!(batched > 0, "no v6 message was ever coalesced");
    }

    #[test]
    fn deterministic_runs_are_reproducible() {
        let (table, traces) = small_setup(3, 1_000);
        let cfg = Dataplane6Config {
            workers: 3,
            deterministic: true,
            cache: LrCacheConfig::paper(128),
            ..Default::default()
        };
        let a = run6(&table, &traces, &cfg);
        let b = run6(&table, &traces, &cfg);
        assert_eq!(checksum(&a), checksum(&b));
        for (wa, wb) in a.workers.iter().zip(&b.workers) {
            assert_eq!(wa.cache, wb.cache, "lc {} stats differ", wa.lc);
            assert_eq!(wa.fe_lookups, wb.fe_lookups);
            assert_eq!(wa.remote_requests, wb.remote_requests);
        }
    }

    #[test]
    fn scalar_and_vector_match_under_churn_with_zero_divergence() {
        let (table, traces) = small_setup(3, 2_000);
        let base = Dataplane6Config {
            workers: 3,
            deterministic: true,
            cache: LrCacheConfig::paper(256),
            churn: Some(ChurnConfig {
                updates: 120,
                updates_per_publication: 20,
                withdraw_fraction: 0.3,
                pace_us: 0,
            }),
            seed: 7,
            ..Default::default()
        };
        let vector = run6(&table, &traces, &base);
        let scalar = run6(
            &table,
            &traces,
            &Dataplane6Config {
                vector: false,
                ..base
            },
        );
        // Identical per-address operation sequences in both modes.
        assert_eq!(checksum(&vector), checksum(&scalar));
        assert_eq!(vector.total_packets(), scalar.total_packets());
        for r in [&vector, &scalar] {
            assert!(r.workers.iter().all(|w| w.spot_check_mismatches == 0));
            let churn = r.churn.as_ref().expect("churn configured");
            assert!(churn.publications > 0);
            assert_eq!(churn.final_mismatches, 0, "published tables diverged");
            let coh = r.coherence.as_ref().expect("deterministic sweep");
            assert_eq!(coh.mismatches, 0, "cache coherence violated");
        }
        // SHIP declines rebuild per-LC fragments; either path must have
        // engaged on every publication.
        let churn = vector.churn.as_ref().unwrap();
        assert!(churn.delta_applies + churn.rebuild_applies > 0);
    }

    #[test]
    fn threaded_run_with_churn_matches_oracle_checks() {
        let (table, traces) = small_setup(4, 2_000);
        let cfg = Dataplane6Config {
            workers: 4,
            cache: LrCacheConfig::paper(256),
            churn: Some(ChurnConfig {
                updates: 200,
                updates_per_publication: 25,
                withdraw_fraction: 0.3,
                pace_us: 0,
            }),
            ..Default::default()
        };
        let report = run6(&table, &traces, &cfg);
        let (packets, _) = oracle_checksum(&table, &traces);
        assert_eq!(report.total_packets(), packets);
        assert!(report.workers.iter().all(|w| w.spot_check_mismatches == 0));
        let churn = report.churn.as_ref().expect("churn configured");
        assert_eq!(churn.final_mismatches, 0);
    }

    #[test]
    fn full_flush_mode_also_stays_coherent() {
        let (table, traces) = small_setup(2, 1_500);
        let cfg = Dataplane6Config {
            workers: 2,
            deterministic: true,
            invalidation: InvalidationMode::FullFlush,
            cache: LrCacheConfig::paper(128),
            churn: Some(ChurnConfig {
                updates: 80,
                updates_per_publication: 20,
                withdraw_fraction: 0.4,
                pace_us: 0,
            }),
            ..Default::default()
        };
        let report = run6(&table, &traces, &cfg);
        assert_eq!(report.coherence.as_ref().unwrap().mismatches, 0);
        assert_eq!(report.churn.as_ref().unwrap().final_mismatches, 0);
    }
}
