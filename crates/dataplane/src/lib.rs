//! The SPAL dataplane — a *real* concurrent router runtime, where the
//! discrete-event simulator (`spal-sim`) models a timed one.
//!
//! ψ LC worker threads each own their ROT-partition forwarding engine
//! and LR-cache, exchange home-LC request/reply messages over bounded
//! lock-free SPSC rings ([`spal_fabric::spsc`]), and drain packet
//! batches through the engines' `lookup_batch` path. A control-plane
//! thread consumes a BGP update stream and republishes forwarding
//! snapshots through an epoch-based RCU layer ([`epoch`]) — readers
//! never block, and cache invalidation after a publication is either
//! the paper's full flush or prefix-targeted eviction.
//!
//! * [`epoch`] — QSBR snapshot publication with writer-side grace
//!   periods and snapshot recycling;
//! * [`runtime`] — workers, control plane, and the [`run`] entry point;
//! * [`report`] — per-worker and churn statistics, comparable with the
//!   simulator's per-LC reports;
//! * [`vcache`] — the version-gated LR-cache (stale fabric replies are
//!   never cached);
//! * [`fault`] — deterministic, seed-driven fault injection for the
//!   fabric and workers;
//! * [`scenario`] — scripted operational episodes (LC failure with
//!   online re-partitioning, flash crowd, sustained overload, soak)
//!   run against the live dataplane, with gated reports.

pub mod epoch;
pub mod fault;
pub mod report;
pub mod runtime;
pub mod runtime6;
pub mod scenario;
pub mod vcache;

pub use epoch::{epoch_table, EpochReader, EpochWriter, Pinned};
pub use fault::{FaultInjector, FaultPlan, FaultStats};
pub use report::{
    ChurnReport, CoherenceSummary, DataplaneReport, FailoverSummary, FaultReport, LatencyHisto,
    LatencySummary, PathLatency, SweepSummary, TailSummary, WorkerReport,
};
pub use runtime::{
    run, ChurnConfig, DataplaneConfig, FailoverPlan, InvalidationMode, OverloadConfig,
};
pub use runtime6::{run6, Dataplane6Config};
pub use scenario::{
    run_scenario, LiveProbe, RecoverySummary, ScenarioConfig, ScenarioKind, ScenarioReport,
};
pub use vcache::{VersionedCache, VersionedFill};
