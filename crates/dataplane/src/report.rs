//! Results of one dataplane run, shaped to be comparable with the
//! discrete-event simulator's [`spal_sim`-style] per-LC reports.

use crate::fault::FaultStats;
use spal_cache::CacheStats;
use std::time::Duration;

/// HDR-style latency histogram: log-linear buckets with 4 sub-bucket
/// bits (16 sub-buckets per power of two, ~6 % relative resolution),
/// O(1) record, O(buckets) percentile. Unlike [`LatencySummary`] it
/// never stores raw samples, so the vector-mode hot path can record
/// per-packet at tens of Mpps without unbounded allocation.
#[derive(Debug, Clone, Default)]
pub struct LatencyHisto {
    /// Bucket counts, grown lazily to the highest bucket touched.
    buckets: Vec<u64>,
    count: u64,
    max_ns: u64,
}

const HISTO_SUB_BITS: u32 = 4;
const HISTO_SUB: u64 = 1 << HISTO_SUB_BITS; // 16 sub-buckets per octave

impl LatencyHisto {
    #[inline]
    fn bucket(ns: u64) -> usize {
        if ns < HISTO_SUB {
            return ns as usize; // exact below 16 ns
        }
        let msb = 63 - ns.leading_zeros() as u64;
        let sub = (ns >> (msb - HISTO_SUB_BITS as u64)) & (HISTO_SUB - 1);
        ((msb - HISTO_SUB_BITS as u64 + 1) * HISTO_SUB + sub) as usize
    }

    /// Lower bound (ns) of bucket `idx` — the value a percentile
    /// falling in that bucket reports.
    fn bucket_floor(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < HISTO_SUB {
            return idx;
        }
        let msb = idx / HISTO_SUB + HISTO_SUB_BITS as u64 - 1;
        let sub = idx % HISTO_SUB;
        (HISTO_SUB + sub) << (msb - HISTO_SUB_BITS as u64)
    }

    /// Record one sample.
    pub fn record(&mut self, ns: u64) {
        self.record_n(ns, 1);
    }

    /// Record `n` samples of the same value — how a vector-mode worker
    /// books a whole burst of same-path packets with one call.
    pub fn record_n(&mut self, ns: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket(ns);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        self.count += n;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHisto) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact maximum sample (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Nearest-rank percentile (`f` in `[0, 1]`), reported as the
    /// containing bucket's lower bound; 0 when empty.
    pub fn percentile_ns(&self, f: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count - 1) as f64 * f).round() as u64;
        if target + 1 >= self.count {
            return self.max_ns; // the top rank is tracked exactly
        }
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum > target {
                return Self::bucket_floor(idx).min(self.max_ns);
            }
        }
        self.max_ns
    }

    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(0.50)
    }

    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(0.99)
    }

    pub fn p999_ns(&self) -> u64 {
        self.percentile_ns(0.999)
    }
}

/// Per-path packet-latency histograms: the three ways a packet can
/// complete in §3's terms — LR-cache hit on a locally produced result
/// (LOC), hit on a remote-sourced result (REM), or a miss that had to
/// run a lookup (local FE or a round trip to the home LC). Keeping the
/// paths separate is what lets BENCH_latency.json show that vector
/// mode's throughput does not come out of the miss path's tail.
#[derive(Debug, Clone, Default)]
pub struct PathLatency {
    /// Completed by an LR-cache hit with M = LOC.
    pub loc_hit: LatencyHisto,
    /// Completed by an LR-cache hit with M = REM.
    pub rem_hit: LatencyHisto,
    /// Missed the cache: local-partition lookup or fabric round trip
    /// (includes waiting-list followers).
    pub miss: LatencyHisto,
}

impl PathLatency {
    /// Fold another worker's paths into this one.
    pub fn merge(&mut self, other: &PathLatency) {
        self.loc_hit.merge(&other.loc_hit);
        self.rem_hit.merge(&other.rem_hit);
        self.miss.merge(&other.miss);
    }

    /// All three paths merged into one distribution.
    pub fn all(&self) -> LatencyHisto {
        let mut h = self.loc_hit.clone();
        h.merge(&self.rem_hit);
        h.merge(&self.miss);
        h
    }
}

/// Per-worker (per-LC) results.
#[derive(Debug, Clone, Default)]
pub struct WorkerReport {
    /// Line-card index this worker modelled.
    pub lc: usize,
    /// Packets from this worker's own trace (all completed).
    pub packets: u64,
    /// LR-cache statistics.
    pub cache: CacheStats,
    /// Batched FE invocations on the local partition engine.
    pub fe_batches: u64,
    /// Addresses resolved by the local partition engine (own packets
    /// plus remote requests served).
    pub fe_lookups: u64,
    /// Requests sent to other workers (this LC was not the home).
    pub remote_requests: u64,
    /// Requests received from other workers.
    pub remote_served: u64,
    /// Replies received for this worker's remote requests.
    pub replies_received: u64,
    /// Replies whose table version predated a processed invalidation —
    /// completed but deliberately not cached.
    pub stale_replies: u64,
    /// Batch results cross-checked against scalar `lookup_counted` on
    /// the same pinned snapshot.
    pub spot_checks: u64,
    /// Spot checks that disagreed (must be zero).
    pub spot_check_mismatches: u64,
    /// Replies for addresses with no outstanding request — duplicates
    /// (fault injection, or an at-least-once fabric) dropped
    /// idempotently.
    pub duplicate_replies: u64,
    /// Fault-injection counters (all zero on a faultless fabric).
    pub faults: FaultStats,
    /// Wrapping checksum over completed packets:
    /// `Σ (next_hop + 1 | 0 on routing miss)`.
    pub next_hop_sum: u64,
    /// Snapshot of `cache` taken when this worker crossed the midpoint
    /// of its trace — the cold-start half. Subtracting it from the final
    /// stats isolates the steady-state hit rate (a cold cache drags the
    /// lifetime average down and hides the working set actually fitting).
    pub cache_cold: CacheStats,
    /// Per-path packet-latency histograms (admission to completion).
    pub latency: PathLatency,
    /// Coalesced `BatchRequest` messages sent (vector mode).
    pub batch_requests_sent: u64,
    /// Coalesced `BatchReply` messages sent (vector mode).
    pub batch_replies_sent: u64,
    /// Packets this worker lost when it was killed by a
    /// [`FailoverPlan`](crate::runtime::FailoverPlan): the unadmitted
    /// remainder of its trace plus its own packets parked mid-flight.
    pub lost_packets: u64,
    /// In-flight remote requests re-routed after a re-partitioning
    /// moved their home LC (re-issued to the new home, or pulled back
    /// into the local FE queue).
    pub rehomed_requests: u64,
    /// Messages discarded because their destination LC was dead —
    /// purged from the outbox at remap time or suppressed at emit.
    pub dead_letters: u64,
    /// Packets dropped at ingress by the overload admission gate
    /// (offered load exceeded the bounded ingress queue).
    pub ingress_dropped: u64,
    /// High-water mark of any outbound fabric ring's occupancy, in
    /// messages, observed after each outbox flush — the bounded-queue
    /// evidence the overload scenario gates on.
    pub max_ring_depth: u64,
    /// Admit-burst timestamp pairs taken for the latency histograms —
    /// zero whenever `capture_latency` is off (the cold-path counter
    /// the skip is asserted through).
    pub timestamp_pairs: u64,
}

/// Latency series in microseconds: running min/mean/max plus the raw
/// samples, so percentiles survive to the report (apply-latency tails
/// are the quantity the incremental-update path is judged on; a mean
/// hides one slow rebuild among many cheap patches).
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    pub count: u64,
    pub sum_us: f64,
    pub min_us: f64,
    pub max_us: f64,
    samples: Vec<f64>,
}

impl LatencySummary {
    pub fn record(&mut self, us: f64) {
        if self.count == 0 || us < self.min_us {
            self.min_us = us;
        }
        if us > self.max_us {
            self.max_us = us;
        }
        self.count += 1;
        self.sum_us += us;
        self.samples.push(us);
    }

    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us / self.count as f64
        }
    }

    /// Nearest-rank percentile (`f` in `[0, 1]`), 0 when empty.
    pub fn percentile_us(&self, f: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
        sorted[((sorted.len() - 1) as f64 * f).round() as usize]
    }

    pub fn p50_us(&self) -> f64 {
        self.percentile_us(0.50)
    }

    pub fn p95_us(&self) -> f64 {
        self.percentile_us(0.95)
    }

    pub fn p99_us(&self) -> f64 {
        self.percentile_us(0.99)
    }
}

/// Control-plane results when a churn stream ran.
#[derive(Debug, Clone, Default)]
pub struct ChurnReport {
    /// Routing updates consumed from the stream.
    pub updates_applied: u64,
    /// Snapshot publications (epoch bumps).
    pub publications: u64,
    /// Invalidation messages broadcast (prefix count × workers in
    /// targeted mode, one flush per worker per publication otherwise).
    pub invalidations_sent: u64,
    /// Per-publication latency: RIB ingest + shadow patch/rebuild +
    /// pointer swap, i.e. update-visible-to-dataplane (readers see the
    /// new snapshot from the swap onward). The grace-period wait for
    /// the retiring snapshot is off this path — see `reclaim_us`.
    pub apply_us: LatencySummary,
    /// Per-LC shadow syncs that went through the engine's incremental
    /// `apply_delta` patch path.
    pub delta_applies: u64,
    /// Per-LC shadow syncs that fell back to a full fragment rebuild
    /// (engine declined, or no patch path).
    pub rebuild_applies: u64,
    /// Engine bytes rewritten by successful patches, summed — the
    /// O(delta)-not-O(table) evidence.
    pub delta_bytes_touched: u64,
    /// Changed prefixes consumed by successful patches, summed.
    pub delta_prefixes_applied: u64,
    /// Grace-period wait when reclaiming the swapped-out snapshot as
    /// the next shadow — the cost moved *off* the apply path (it runs
    /// after the swap is recorded, before the invalidations go out).
    /// Large values here mean readers are slow to repin (e.g. a
    /// time-sliced single core), not that updates are slow to land.
    pub reclaim_us: LatencySummary,
    /// Post-run consistency samples: published table vs the control
    /// plane's per-LC RIB oracle.
    pub final_checks: u64,
    /// Samples that disagreed (must be zero).
    pub final_mismatches: u64,
}

/// Aggregated fault-injection results (present when the run had a
/// [`crate::fault::FaultPlan`]).
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Plan seed; re-running with the same seed replays every fault.
    pub seed: u64,
    /// Messages delivered late (sum over workers).
    pub delayed: u64,
    /// Messages "lost" and recovered by delayed retransmit.
    pub dropped_retransmitted: u64,
    /// Extra message copies delivered.
    pub duplicated: u64,
    /// Worker iterations stalled mid-batch.
    pub stalls: u64,
    /// No-op snapshot publications forced at adversarial points
    /// (deterministic schedule only).
    pub forced_publications: u64,
    /// Duplicate replies recognized and dropped by receivers.
    pub duplicate_replies: u64,
}

/// Post-quiesce cache-coherence sweep (deterministic runs): every
/// entry still resident in any LR-cache compared against the control
/// plane's per-LC RIB oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoherenceSummary {
    /// Resident entries compared (main array + victim caches).
    pub entries_checked: u64,
    /// Entries whose cached next hop disagreed with the oracle
    /// (must be zero).
    pub mismatches: u64,
}

/// Online re-partitioning after an LC failure: what the control plane
/// did when the failure flag was raised.
#[derive(Debug, Clone, Copy, Default)]
pub struct FailoverSummary {
    /// The LC that died.
    pub dead_lc: u16,
    /// Prefixes in the dead LC's RIB fragment, all re-homed across the
    /// survivors.
    pub moved_prefixes: u64,
    /// Wall-clock cost of the remap: fragment move, both snapshot-copy
    /// patches, epoch publication and grace wait, and the cache
    /// invalidations.
    pub remap_us: f64,
    /// Whether invalidations were prefix-targeted (`true`) or the remap
    /// fell back to a full flush because the moved set exceeded the
    /// control-ring budget.
    pub targeted: bool,
    /// Invalidation messages sent per surviving LC (1 for a flush).
    pub invalidations_per_lc: u64,
}

/// Periodic mid-run coherence sweeps (deterministic soak runs): every
/// resident cache entry of every live worker compared against the
/// control plane's per-LC RIB oracle, `sweep_every` rounds apart.
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepSummary {
    /// Sweeps performed.
    pub sweeps: u64,
    /// Resident entries compared, summed over sweeps.
    pub entries_checked: u64,
    /// Entries that disagreed with the oracle (must be zero).
    pub mismatches: u64,
}

/// Tail statistics over per-packet processing cost, estimated from
/// per-iteration wall time divided by packets completed that iteration.
#[derive(Debug, Clone, Default)]
pub struct TailSummary {
    pub samples: u64,
    pub p50_ns: f64,
    pub p99_ns: f64,
    pub max_ns: f64,
}

impl TailSummary {
    /// Build from raw ns-per-packet samples (consumed; order destroyed).
    pub fn from_samples(mut ns: Vec<f64>) -> Self {
        if ns.is_empty() {
            return TailSummary::default();
        }
        ns.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
        let q = |f: f64| ns[((ns.len() - 1) as f64 * f).round() as usize];
        TailSummary {
            samples: ns.len() as u64,
            p50_ns: q(0.50),
            p99_ns: q(0.99),
            max_ns: *ns.last().expect("non-empty"),
        }
    }
}

/// Results of one dataplane run.
#[derive(Debug, Clone, Default)]
pub struct DataplaneReport {
    /// Per-worker breakdown.
    pub workers: Vec<WorkerReport>,
    /// Control-plane results (`None` when no churn was configured).
    pub churn: Option<ChurnReport>,
    /// Wall-clock duration of the run (worker spawn to last join).
    pub elapsed: Duration,
    /// Lookup-cost tail across all workers.
    pub tail: TailSummary,
    /// Whether the run used the deterministic single-threaded schedule.
    pub deterministic: bool,
    /// Fault-injection results (`None` when no plan was configured).
    pub faults: Option<FaultReport>,
    /// Post-quiesce coherence sweep (`None` on threaded runs).
    pub coherence: Option<CoherenceSummary>,
    /// Online re-partitioning results (`None` unless a
    /// [`FailoverPlan`](crate::runtime::FailoverPlan) fired and the
    /// control plane remapped).
    pub failover: Option<FailoverSummary>,
    /// Mid-run coherence sweeps (`None` unless `sweep_every` was set on
    /// a deterministic run).
    pub sweeps: Option<SweepSummary>,
}

impl DataplaneReport {
    /// Packets completed across all workers.
    pub fn total_packets(&self) -> u64 {
        self.workers.iter().map(|w| w.packets).sum()
    }

    /// Aggregate throughput in million packets per second.
    pub fn throughput_mpps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.total_packets() as f64 / s / 1e6
        }
    }

    /// Aggregate LR-cache hit rate (complete + waiting hits over
    /// probes), the same ratio [`spal-sim`'s report] computes.
    pub fn hit_rate(&self) -> f64 {
        let mut hits = 0u64;
        let mut probes = 0u64;
        for w in &self.workers {
            hits += w.cache.hits_loc + w.cache.hits_rem + w.cache.hits_waiting;
            probes += w.cache.probes();
        }
        if probes == 0 {
            0.0
        } else {
            hits as f64 / probes as f64
        }
    }

    /// Share of complete-entry hits that were remote-sourced (REM).
    pub fn rem_share(&self) -> f64 {
        let loc: u64 = self.workers.iter().map(|w| w.cache.hits_loc).sum();
        let rem: u64 = self.workers.iter().map(|w| w.cache.hits_rem).sum();
        if loc + rem == 0 {
            0.0
        } else {
            rem as f64 / (loc + rem) as f64
        }
    }

    /// LR-cache hit rate over the cold-start half of the run (each
    /// worker's stats up to its trace midpoint).
    pub fn hit_rate_cold(&self) -> f64 {
        let mut hits = 0u64;
        let mut probes = 0u64;
        for w in &self.workers {
            hits += w.cache_cold.hits_loc + w.cache_cold.hits_rem + w.cache_cold.hits_waiting;
            probes += w.cache_cold.probes();
        }
        if probes == 0 {
            0.0
        } else {
            hits as f64 / probes as f64
        }
    }

    /// LR-cache hit rate over the steady-state half of the run (final
    /// stats minus the cold snapshot). Falls back to the lifetime rate
    /// when no cold snapshot was taken (threaded runs record it too;
    /// the guard covers hand-built reports).
    pub fn hit_rate_steady(&self) -> f64 {
        let mut hits = 0u64;
        let mut probes = 0u64;
        for w in &self.workers {
            let h = w.cache.hits_loc + w.cache.hits_rem + w.cache.hits_waiting;
            let hc = w.cache_cold.hits_loc + w.cache_cold.hits_rem + w.cache_cold.hits_waiting;
            hits += h - hc;
            probes += w.cache.probes() - w.cache_cold.probes();
        }
        if probes == 0 {
            self.hit_rate()
        } else {
            hits as f64 / probes as f64
        }
    }

    /// Per-path latency histograms merged across workers.
    pub fn latency_paths(&self) -> PathLatency {
        let mut merged = PathLatency::default();
        for w in &self.workers {
            merged.merge(&w.latency);
        }
        merged
    }

    /// Wrapping checksum over every completed packet, order-independent
    /// — equal runs resolve equal next hops.
    pub fn checksum(&self) -> u64 {
        self.workers
            .iter()
            .fold(0u64, |acc, w| acc.wrapping_add(w.next_hop_sum))
    }

    /// Total spot-check disagreements (must be zero).
    pub fn spot_check_mismatches(&self) -> u64 {
        self.workers.iter().map(|w| w.spot_check_mismatches).sum()
    }

    /// Every way this run can disagree with the scalar full-table
    /// oracle, summed: per-batch spot checks, the control plane's
    /// post-churn table samples, the post-quiesce cache-coherence
    /// sweep, and the mid-run soak sweeps. Zero means every delivered
    /// lookup and every surviving cache entry matched the oracle.
    pub fn oracle_divergence(&self) -> u64 {
        let churn = self.churn.as_ref().map_or(0, |c| c.final_mismatches);
        let coherence = self.coherence.as_ref().map_or(0, |c| c.mismatches);
        let sweeps = self.sweeps.as_ref().map_or(0, |s| s.mismatches);
        self.spot_check_mismatches() + churn + coherence + sweeps
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let churn = match &self.churn {
            Some(c) => format!(
                " | {} updates in {} pubs, apply mean {:.1} µs p99 {:.1} µs ({} patched / {} rebuilt, {} B touched)",
                c.updates_applied,
                c.publications,
                c.apply_us.mean_us(),
                c.apply_us.p99_us(),
                c.delta_applies,
                c.rebuild_applies,
                c.delta_bytes_touched,
            ),
            None => String::new(),
        };
        format!(
            "{} pkts on {} workers in {:.3} s | {:.2} Mpps | hit rate {:.3} | REM share {:.3} | p99 {:.0} ns/pkt{}",
            self.total_packets(),
            self.workers.len(),
            self.elapsed.as_secs_f64(),
            self.throughput_mpps(),
            self.hit_rate(),
            self.rem_share(),
            self.tail.p99_ns,
            churn,
        )
    }

    /// One-line summary of the fault adversary and what it achieved,
    /// for `spal dataplane --faults`. Empty when no plan ran.
    pub fn fault_summary(&self) -> String {
        let Some(f) = &self.faults else {
            return String::new();
        };
        let coh = match &self.coherence {
            Some(c) => format!(
                " | coherence {}/{} ok",
                c.entries_checked - c.mismatches,
                c.entries_checked
            ),
            None => String::new(),
        };
        format!(
            "faults(seed {}): {} delayed, {} dropped+retransmitted, {} duplicated ({} dup replies dropped), {} stalls, {} forced pubs | oracle divergence {}{}",
            f.seed,
            f.delayed,
            f.dropped_retransmitted,
            f.duplicated,
            f.duplicate_replies,
            f.stalls,
            f.forced_publications,
            self.oracle_divergence(),
            coh,
        )
    }

    /// Hand-rolled JSON rendering (the workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"workers\": {},\n", self.workers.len()));
        s.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        s.push_str(&format!("  \"total_packets\": {},\n", self.total_packets()));
        s.push_str(&format!(
            "  \"elapsed_s\": {:.6},\n",
            self.elapsed.as_secs_f64()
        ));
        s.push_str(&format!(
            "  \"throughput_mpps\": {:.4},\n",
            self.throughput_mpps()
        ));
        s.push_str(&format!("  \"hit_rate\": {:.6},\n", self.hit_rate()));
        s.push_str(&format!(
            "  \"hit_rate_cold\": {:.6},\n",
            self.hit_rate_cold()
        ));
        s.push_str(&format!(
            "  \"hit_rate_steady\": {:.6},\n",
            self.hit_rate_steady()
        ));
        s.push_str(&format!("  \"rem_share\": {:.6},\n", self.rem_share()));
        s.push_str(&format!("  \"checksum\": {},\n", self.checksum()));
        s.push_str(&format!(
            "  \"spot_check_mismatches\": {},\n",
            self.spot_check_mismatches()
        ));
        s.push_str(&format!(
            "  \"tail_ns\": {{ \"p50\": {:.1}, \"p99\": {:.1}, \"max\": {:.1} }},\n",
            self.tail.p50_ns, self.tail.p99_ns, self.tail.max_ns
        ));
        s.push_str(&self.latency_json());
        match &self.churn {
            Some(c) => s.push_str(&format!(
                "  \"churn\": {{ \"updates\": {}, \"publications\": {}, \"invalidations_sent\": {}, \"apply_us\": {{ \"mean\": {:.2}, \"min\": {:.2}, \"max\": {:.2}, \"p50\": {:.2}, \"p95\": {:.2}, \"p99\": {:.2} }}, \"delta_applies\": {}, \"rebuild_applies\": {}, \"delta_bytes_touched\": {}, \"delta_prefixes_applied\": {}, \"reclaim_us\": {{ \"mean\": {:.2}, \"max\": {:.2} }}, \"final_checks\": {}, \"final_mismatches\": {} }},\n",
                c.updates_applied,
                c.publications,
                c.invalidations_sent,
                c.apply_us.mean_us(),
                c.apply_us.min_us,
                c.apply_us.max_us,
                c.apply_us.p50_us(),
                c.apply_us.p95_us(),
                c.apply_us.p99_us(),
                c.delta_applies,
                c.rebuild_applies,
                c.delta_bytes_touched,
                c.delta_prefixes_applied,
                c.reclaim_us.mean_us(),
                c.reclaim_us.max_us,
                c.final_checks,
                c.final_mismatches,
            )),
            None => s.push_str("  \"churn\": null,\n"),
        }
        s.push_str(&self.faults_json());
        s.push_str(&self.coherence_json());
        s.push_str(&self.failover_json());
        s.push_str(&self.sweeps_json());
        s.push_str("  \"per_worker\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"lc\": {}, \"packets\": {}, \"hits_loc\": {}, \"hits_rem\": {}, \"hits_waiting\": {}, \"misses\": {}, \"invalidations\": {}, \"flushes\": {}, \"fe_lookups\": {}, \"remote_requests\": {}, \"remote_served\": {}, \"stale_replies\": {}, \"duplicate_replies\": {}, \"lost_packets\": {}, \"rehomed_requests\": {}, \"dead_letters\": {}, \"ingress_dropped\": {}, \"max_ring_depth\": {} }}{}\n",
                w.lc,
                w.packets,
                w.cache.hits_loc,
                w.cache.hits_rem,
                w.cache.hits_waiting,
                w.cache.misses,
                w.cache.invalidations,
                w.cache.flushes,
                w.fe_lookups,
                w.remote_requests,
                w.remote_served,
                w.stale_replies,
                w.duplicate_replies,
                w.lost_packets,
                w.rehomed_requests,
                w.dead_letters,
                w.ingress_dropped,
                w.max_ring_depth,
                if i + 1 < self.workers.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    fn failover_json(&self) -> String {
        match &self.failover {
            Some(f) => format!(
                "  \"failover\": {{ \"dead_lc\": {}, \"moved_prefixes\": {}, \"remap_us\": {:.2}, \"targeted\": {}, \"invalidations_per_lc\": {} }},\n",
                f.dead_lc, f.moved_prefixes, f.remap_us, f.targeted, f.invalidations_per_lc,
            ),
            None => "  \"failover\": null,\n".to_string(),
        }
    }

    fn sweeps_json(&self) -> String {
        match &self.sweeps {
            Some(s) => format!(
                "  \"sweeps\": {{ \"sweeps\": {}, \"entries_checked\": {}, \"mismatches\": {} }},\n",
                s.sweeps, s.entries_checked, s.mismatches,
            ),
            None => "  \"sweeps\": null,\n".to_string(),
        }
    }

    /// JSON object with per-path latency percentiles — the payload
    /// BENCH_latency.json collects per configuration.
    pub fn latency_json(&self) -> String {
        let paths = self.latency_paths();
        let one = |h: &LatencyHisto| {
            format!(
                "{{ \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {} }}",
                h.count(),
                h.p50_ns(),
                h.p99_ns(),
                h.p999_ns(),
                h.max_ns()
            )
        };
        format!(
            "  \"latency\": {{ \"loc_hit\": {}, \"rem_hit\": {}, \"miss\": {}, \"all\": {} }},\n",
            one(&paths.loc_hit),
            one(&paths.rem_hit),
            one(&paths.miss),
            one(&paths.all()),
        )
    }

    fn faults_json(&self) -> String {
        match &self.faults {
            Some(f) => format!(
                "  \"faults\": {{ \"seed\": {}, \"delayed\": {}, \"dropped_retransmitted\": {}, \"duplicated\": {}, \"stalls\": {}, \"forced_publications\": {}, \"duplicate_replies\": {} }},\n",
                f.seed,
                f.delayed,
                f.dropped_retransmitted,
                f.duplicated,
                f.stalls,
                f.forced_publications,
                f.duplicate_replies,
            ),
            None => "  \"faults\": null,\n".to_string(),
        }
    }

    fn coherence_json(&self) -> String {
        match &self.coherence {
            Some(c) => format!(
                "  \"coherence\": {{ \"entries_checked\": {}, \"mismatches\": {} }},\n",
                c.entries_checked, c.mismatches,
            ),
            None => "  \"coherence\": null,\n".to_string(),
        }
    }

    /// Deterministic subset of [`Self::to_json`]: everything that is a
    /// pure function of the configuration and seeds, with all
    /// wall-clock-derived numbers (elapsed, throughput, tail
    /// percentiles, apply latencies) omitted. Deterministic runs render
    /// byte-for-byte identically across machines, which is what the
    /// golden-report regression test pins.
    pub fn canonical_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"workers\": {},\n", self.workers.len()));
        s.push_str(&format!("  \"deterministic\": {},\n", self.deterministic));
        s.push_str(&format!("  \"total_packets\": {},\n", self.total_packets()));
        s.push_str(&format!("  \"hit_rate\": {:.6},\n", self.hit_rate()));
        s.push_str(&format!("  \"rem_share\": {:.6},\n", self.rem_share()));
        s.push_str(&format!("  \"checksum\": {},\n", self.checksum()));
        s.push_str(&format!(
            "  \"spot_check_mismatches\": {},\n",
            self.spot_check_mismatches()
        ));
        s.push_str(&format!(
            "  \"oracle_divergence\": {},\n",
            self.oracle_divergence()
        ));
        match &self.churn {
            Some(c) => s.push_str(&format!(
                "  \"churn\": {{ \"updates\": {}, \"publications\": {}, \"invalidations_sent\": {}, \"final_checks\": {}, \"final_mismatches\": {} }},\n",
                c.updates_applied,
                c.publications,
                c.invalidations_sent,
                c.final_checks,
                c.final_mismatches,
            )),
            None => s.push_str("  \"churn\": null,\n"),
        }
        s.push_str(&self.faults_json());
        s.push_str(&self.coherence_json());
        s.push_str("  \"per_worker\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            s.push_str(&format!(
                "    {{ \"lc\": {}, \"packets\": {}, \"hits_loc\": {}, \"hits_rem\": {}, \"hits_waiting\": {}, \"misses\": {}, \"invalidations\": {}, \"flushes\": {}, \"fe_lookups\": {}, \"remote_requests\": {}, \"remote_served\": {}, \"stale_replies\": {}, \"duplicate_replies\": {}, \"next_hop_sum\": {} }}{}\n",
                w.lc,
                w.packets,
                w.cache.hits_loc,
                w.cache.hits_rem,
                w.cache.hits_waiting,
                w.cache.misses,
                w.cache.invalidations,
                w.cache.flushes,
                w.fe_lookups,
                w.remote_requests,
                w.remote_served,
                w.stale_replies,
                w.duplicate_replies,
                w.next_hop_sum,
                if i + 1 < self.workers.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tail_summary_quantiles() {
        let t = TailSummary::from_samples((1..=100).map(|i| i as f64).collect());
        assert_eq!(t.samples, 100);
        assert_eq!(t.p50_ns, 51.0);
        assert_eq!(t.p99_ns, 99.0);
        assert_eq!(t.max_ns, 100.0);
        assert_eq!(TailSummary::from_samples(vec![]).samples, 0);
    }

    #[test]
    fn latency_summary_tracks_extremes() {
        let mut l = LatencySummary::default();
        l.record(5.0);
        l.record(1.0);
        l.record(9.0);
        assert_eq!(l.count, 3);
        assert_eq!(l.min_us, 1.0);
        assert_eq!(l.max_us, 9.0);
        assert!((l.mean_us() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut l = LatencySummary::default();
        assert_eq!(l.p99_us(), 0.0);
        for i in 1..=100 {
            l.record(i as f64);
        }
        assert_eq!(l.p50_us(), 51.0);
        assert_eq!(l.p95_us(), 95.0);
        assert_eq!(l.p99_us(), 99.0);
        assert_eq!(l.percentile_us(1.0), 100.0);
    }

    #[test]
    fn histo_buckets_are_monotone_and_exact_below_16() {
        for ns in 0..16u64 {
            assert_eq!(LatencyHisto::bucket(ns), ns as usize);
            assert_eq!(LatencyHisto::bucket_floor(ns as usize), ns);
        }
        let mut prev = 0usize;
        for shift in 4..63u32 {
            for sub in [0u64, 1, 7, 15] {
                let ns = (1u64 << shift) + (sub << (shift - 4));
                let idx = LatencyHisto::bucket(ns);
                assert!(idx >= prev, "bucket index regressed at {ns}");
                // A bucket's floor maps back to the same bucket, and is
                // never above the sample it came from.
                assert_eq!(LatencyHisto::bucket(LatencyHisto::bucket_floor(idx)), idx);
                assert!(LatencyHisto::bucket_floor(idx) <= ns);
                prev = idx;
            }
        }
    }

    #[test]
    fn histo_percentiles_within_bucket_resolution() {
        let mut h = LatencyHisto::default();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.max_ns(), 10_000);
        // 16 sub-buckets per octave → the reported floor is within
        // 1/16 (~6.25 %) below the true nearest-rank value.
        for (f, exact) in [(0.50, 5000u64), (0.99, 9901), (0.999, 9991)] {
            let got = h.percentile_ns(f);
            assert!(
                got <= exact && got as f64 >= exact as f64 * (1.0 - 1.0 / 16.0),
                "p{f}: got {got}, exact {exact}"
            );
        }
        assert_eq!(h.percentile_ns(1.0), 10_000);
    }

    #[test]
    fn histo_record_n_and_merge() {
        let mut a = LatencyHisto::default();
        let mut b = LatencyHisto::default();
        a.record_n(100, 50);
        b.record_n(1_000_000, 5);
        a.merge(&b);
        assert_eq!(a.count(), 55);
        assert_eq!(a.max_ns(), 1_000_000);
        assert!(a.p50_ns() <= 100);
        assert!(a.p999_ns() > 900_000);
        assert_eq!(LatencyHisto::default().percentile_ns(0.99), 0);
    }

    #[test]
    fn path_latency_all_merges_paths() {
        let mut p = PathLatency::default();
        p.loc_hit.record_n(50, 10);
        p.rem_hit.record_n(80, 10);
        p.miss.record_n(5_000, 10);
        let all = p.all();
        assert_eq!(all.count(), 30);
        assert_eq!(all.max_ns(), 5_000);
        let mut merged = PathLatency::default();
        merged.merge(&p);
        merged.merge(&p);
        assert_eq!(merged.all().count(), 60);
    }

    #[test]
    fn cold_and_steady_hit_rates_split() {
        let mut r = DataplaneReport::default();
        let mut w = WorkerReport {
            lc: 0,
            packets: 200,
            ..Default::default()
        };
        // Cold half: 10 hits / 100 probes. Lifetime: 100 hits / 200.
        w.cache_cold.hits_loc = 10;
        w.cache_cold.misses = 90;
        w.cache.hits_loc = 100;
        w.cache.misses = 100;
        r.workers.push(w);
        assert!((r.hit_rate_cold() - 0.10).abs() < 1e-12);
        assert!((r.hit_rate_steady() - 0.90).abs() < 1e-12);
        assert!((r.hit_rate() - 0.50).abs() < 1e-12);
        let json = r.to_json();
        assert!(json.contains("\"hit_rate_cold\": 0.100000"));
        assert!(json.contains("\"hit_rate_steady\": 0.900000"));
        // The canonical (golden-pinned) rendering must not carry any of
        // the new wall-clock or cold-split fields.
        let canon = r.canonical_json();
        assert!(!canon.contains("hit_rate_cold"));
        assert!(!canon.contains("latency"));
    }

    #[test]
    fn report_aggregates_and_renders() {
        let mut r = DataplaneReport::default();
        for lc in 0..2 {
            let mut w = WorkerReport {
                lc,
                packets: 10,
                next_hop_sum: 7,
                ..Default::default()
            };
            w.cache.hits_loc = 6;
            w.cache.hits_rem = 2;
            w.cache.misses = 2;
            r.workers.push(w);
        }
        r.elapsed = Duration::from_millis(10);
        assert_eq!(r.total_packets(), 20);
        assert_eq!(r.checksum(), 14);
        assert!((r.hit_rate() - 0.8).abs() < 1e-12);
        assert!((r.rem_share() - 0.25).abs() < 1e-12);
        let json = r.to_json();
        assert!(json.contains("\"total_packets\": 20"));
        assert!(json.contains("\"churn\": null"));
        assert!(r.summary().contains("hit rate 0.800"));
    }
}
