#!/bin/sh
# Regenerate every paper table/figure. ~15-30 min on a laptop-class box.
set -e
cd "$(dirname "$0")"
cargo build --release -p spal-bench
# Simulator-engine regression gate: refreshes BENCH_sim.json at the repo
# root and fails the whole run if the fast-forward engine's speedup
# contract is broken, so perf is tracked alongside the science.
echo "=== bench_gate ==="
./target/release/bench_gate "$@" | tee results/bench_gate.txt
# Threaded-dataplane gate: refreshes BENCH_dataplane.json (worker
# scaling, churn degradation, oracle checksums) — E18's harness.
echo "=== bench_dataplane ==="
./target/release/bench_dataplane "$@" | tee results/bench_dataplane.txt
for exp in exp_partitioning exp_storage exp_fig3_sram exp_accesses \
           exp_fig4_mix exp_fig5_cache_size exp_fig6_scaling exp_headline \
           exp_length_partition exp_speed_cases exp_ablations exp_update_rate \
           exp_range_cache exp_worst_case exp_strides exp_growth exp_mixed_traces \
           exp_overload; do
  echo "=== $exp ==="
  ./target/release/$exp "$@" | tee results/$exp.txt
done
