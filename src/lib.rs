//! # SPAL — Speedy Packet Lookup for High-Performance Routers
//!
//! Facade crate re-exporting the whole SPAL reproduction workspace.
//! See the individual crates for detail:
//!
//! * [`rib`] — prefixes, routing tables, synthetic BGP tables
//! * [`lpm`] — longest-prefix-match tries (binary, DP, Lulea, LC-trie)
//! * [`cache`] — the LR-cache (set-associative, mix-aware, victim cache)
//! * [`fabric`] — switching-fabric latency/bandwidth models
//! * [`traffic`] — trace presets and packet arrival processes
//! * [`core`] — partition-bit selection, ROT-partitions, router config
//! * [`sim`] — the cycle-driven router simulator
//! * [`dataplane`] — the threaded runtime (v4 and v6), epoch layer,
//!   version-gated caches

pub use spal_cache as cache;
pub use spal_core as core;
pub use spal_dataplane as dataplane;
pub use spal_fabric as fabric;
pub use spal_lpm as lpm;
pub use spal_rib as rib;
pub use spal_sim as sim;
pub use spal_traffic as traffic;
