//! Thread-safety guarantees: every read-only structure a multi-core
//! software router would share across workers must be `Send + Sync`, and
//! sharing one trie across threads must produce identical results.

use spal::core::{ForwardingTable, LpmAlgorithm};
use spal::lpm::Lpm;
use spal::rib::synth;
use std::sync::Arc;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_structures_are_send_sync() {
    assert_send_sync::<spal::rib::RoutingTable>();
    assert_send_sync::<spal::rib::Prefix>();
    assert_send_sync::<spal::core::Partitioning>();
    assert_send_sync::<ForwardingTable>();
    assert_send_sync::<spal::lpm::lulea::LuleaTrie>();
    assert_send_sync::<spal::lpm::dp::DpTrie>();
    assert_send_sync::<spal::lpm::lctrie::LcTrie>();
    assert_send_sync::<spal::lpm::binary::BinaryTrie>();
    assert_send_sync::<spal::traffic::Trace>();
}

#[test]
fn concurrent_lookups_agree_with_sequential() {
    let table = synth::synthesize(&synth::SynthConfig::sized(5_000, 91));
    let fwd = Arc::new(ForwardingTable::build(LpmAlgorithm::Lulea, &table));
    let addrs: Arc<Vec<u32>> = Arc::new(
        table
            .entries()
            .iter()
            .step_by(3)
            .map(|e| e.prefix.first_addr())
            .collect(),
    );
    let sequential: Vec<_> = addrs.iter().map(|&a| fwd.lookup(a)).collect();

    let threads = 4;
    let results: Vec<Vec<_>> = std::thread::scope(|scope| {
        (0..threads)
            .map(|t| {
                let fwd = Arc::clone(&fwd);
                let addrs = Arc::clone(&addrs);
                scope.spawn(move || {
                    addrs
                        .iter()
                        .skip(t)
                        .step_by(threads)
                        .map(|&a| fwd.lookup(a))
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    for (t, chunk) in results.into_iter().enumerate() {
        let expect: Vec<_> = sequential
            .iter()
            .skip(t)
            .step_by(threads)
            .copied()
            .collect();
        assert_eq!(chunk, expect, "thread {t} diverged");
    }
}
