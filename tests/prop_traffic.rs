//! Property-based tests for the traffic substrate: samplers respect
//! their distributions, traces preserve their destination multisets
//! through splitting, and the text formats round-trip.

use proptest::prelude::*;
use spal::traffic::locality::AliasTable;
use spal::traffic::Trace;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn alias_table_respects_weights(
        weights in proptest::collection::vec(0.01f64..10.0, 1..12),
    ) {
        use rand::SeedableRng;
        let table = AliasTable::new(&weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 30_000usize;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / n as f64;
            // Loose statistical bound: absolute error under 4 sigma-ish.
            let sigma = (expect * (1.0 - expect) / n as f64).sqrt();
            prop_assert!(
                (got - expect).abs() < 5.0 * sigma + 0.01,
                "outcome {i}: expected {expect:.4}, got {got:.4}"
            );
        }
    }

    #[test]
    fn split_preserves_destinations(
        dests in proptest::collection::vec(any::<u32>(), 0..200),
        n in 1usize..8,
    ) {
        let trace = Trace::new("t", dests.clone());
        let streams = trace.split(n);
        prop_assert_eq!(streams.len(), n);
        // Multiset and per-position order preservation: re-interleave.
        let mut rebuilt = Vec::with_capacity(dests.len());
        let mut idx = vec![0usize; n];
        for i in 0..dests.len() {
            let s = i % n;
            rebuilt.push(streams[s].destinations()[idx[s]]);
            idx[s] += 1;
        }
        prop_assert_eq!(rebuilt, dests);
    }

    #[test]
    fn trace_text_roundtrip(dests in proptest::collection::vec(any::<u32>(), 0..100)) {
        let trace = Trace::new("t", dests);
        let mut buf = Vec::new();
        trace.write_text(&mut buf).expect("write to Vec");
        let back = Trace::read_text("t", buf.as_slice()).expect("roundtrip parses");
        prop_assert_eq!(back.destinations(), trace.destinations());
    }

    #[test]
    fn distinct_counts_bounded(
        dests in proptest::collection::vec(0u32..50, 0..300),
    ) {
        let trace = Trace::new("t", dests.clone());
        let mut truth: HashMap<u32, ()> = HashMap::new();
        for d in &dests {
            truth.insert(*d, ());
        }
        prop_assert_eq!(trace.distinct(), truth.len());
        prop_assert!(trace.distinct() <= trace.len().max(1));
    }
}
