//! Property tests aimed at the subtlest machinery: dense/very-dense
//! Lulea chunks (rarely produced by uniform random tables), the interval
//! map's boundary arithmetic, and the Fenwick-tree reuse-distance
//! profiler.

use proptest::prelude::*;
use spal::core::baseline::{interval_map, interval_of};
use spal::lpm::{lulea::LuleaTrie, Lpm};
use spal::rib::{NextHop, Prefix, RouteEntry, RoutingTable};
use spal::traffic::analysis::ReuseProfile;
use spal::traffic::Trace;

/// Tables concentrated under a single /16 so level-2/3 chunks go dense:
/// many /24s and /32s with few distinct next hops (head runs form and
/// break unpredictably).
fn arb_dense_table() -> impl Strategy<Value = RoutingTable> {
    (
        proptest::collection::btree_set((0u32..256, 0u16..4), 1..120), // /24s
        proptest::collection::btree_set((0u32..65536, 0u16..4), 0..80), // /32s
        proptest::option::of(0u16..4),                                 // /16 cover
    )
        .prop_map(|(deep24, deep32, cover)| {
            let base = 0x0A01_0000u32; // 10.1.0.0
            let mut entries = Vec::new();
            if let Some(nh) = cover {
                entries.push(RouteEntry {
                    prefix: Prefix::new(base, 16).unwrap(),
                    next_hop: NextHop(nh),
                });
            }
            for (third, nh) in deep24 {
                entries.push(RouteEntry {
                    prefix: Prefix::new(base | (third << 8), 24).unwrap(),
                    next_hop: NextHop(nh),
                });
            }
            for (low, nh) in deep32 {
                entries.push(RouteEntry {
                    prefix: Prefix::new(base | low, 32).unwrap(),
                    next_hop: NextHop(nh),
                });
            }
            RoutingTable::from_entries(entries)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lulea_handles_dense_chunks(
        table in arb_dense_table(),
        lows in proptest::collection::vec(0u32..65536, 32),
    ) {
        let trie = LuleaTrie::build(&table);
        let base = 0x0A01_0000u32;
        for low in lows {
            let addr = base | low;
            prop_assert_eq!(
                trie.lookup(addr),
                table.longest_match(addr).map(|e| e.next_hop),
                "addr {:#010x}", addr
            );
        }
        // Boundary probes: just inside/outside the /16.
        for addr in [base, base | 0xFFFF, base.wrapping_sub(1), base + 0x1_0000] {
            prop_assert_eq!(
                trie.lookup(addr),
                table.longest_match(addr).map(|e| e.next_hop)
            );
        }
    }

    #[test]
    fn interval_map_partitions_space(
        routes in proptest::collection::vec((any::<u32>(), 0u8..=32, 0u16..8), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 16),
    ) {
        let table = RoutingTable::from_entries(routes.into_iter().map(|(b, l, nh)| RouteEntry {
            prefix: Prefix::new(b, l).unwrap(),
            next_hop: NextHop(nh),
        }));
        let map = interval_map(&table);
        // Exact partition of the space.
        prop_assert_eq!(map[0].start, 0);
        prop_assert_eq!(map.last().unwrap().end, u32::MAX);
        for w in map.windows(2) {
            prop_assert_eq!(w[0].end as u64 + 1, w[1].start as u64);
            prop_assert_ne!(w[0].next_hop, w[1].next_hop); // maximally merged
        }
        // Values match the oracle at probes and at every boundary.
        let mut all: Vec<u32> = probes;
        for iv in &map {
            all.push(iv.start);
            all.push(iv.end);
        }
        for addr in all {
            let iv = interval_of(&map, addr);
            prop_assert!(iv.contains_addr(addr));
            prop_assert_eq!(iv.next_hop, table.longest_match(addr).map(|e| e.next_hop));
        }
    }

    #[test]
    fn reuse_profile_matches_naive_lru(
        dests in proptest::collection::vec(0u32..40, 1..250),
        cap in 1usize..24,
    ) {
        let trace = Trace::new("t", dests.clone());
        let predicted = ReuseProfile::of(&trace, cap + 1).lru_hit_rate(cap);
        // Naive fully-associative LRU.
        let mut order: Vec<u32> = Vec::new();
        let mut hits = 0u64;
        for &a in &dests {
            if let Some(pos) = order.iter().position(|&x| x == a) {
                if pos < cap {
                    hits += 1;
                }
                order.remove(pos);
            }
            order.insert(0, a);
        }
        let simulated = hits as f64 / dests.len() as f64;
        prop_assert!((simulated - predicted).abs() < 1e-9,
            "cap {}: sim {} vs predicted {}", cap, simulated, predicted);
    }
}
