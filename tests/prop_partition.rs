//! Property-based tests for the SPAL partitioner: for *any* prefix set,
//! any ψ and any (distinct) choice of partitioning bits, the home LC's
//! forwarding table answers every address exactly like the full table —
//! the correctness foundation of the whole scheme.

use proptest::prelude::*;
use spal::core::bits::{eta_for, select_bits};
use spal::core::partition::{rot_partitions, Partitioning};
use spal::rib::{NextHop, Prefix, RouteEntry, RoutingTable};

fn arb_table(max_routes: usize) -> impl Strategy<Value = RoutingTable> {
    proptest::collection::vec((any::<u32>(), 0u8..=32, 0u16..16), 1..max_routes).prop_map(|v| {
        RoutingTable::from_entries(v.into_iter().map(|(bits, len, nh)| RouteEntry {
            prefix: Prefix::new(bits, len).expect("len <= 32"),
            next_hop: NextHop(nh),
        }))
    })
}

/// Pinned regression from `prop_partition.proptest-regressions`
/// (shrunk by upstream proptest before the runner was vendored; the
/// vendored shim does not replay that file, so the case lives here as
/// a plain test): a table holding only `0.0.0.0/30 → NextHop(0)` with
/// ψ = 6 once mis-homed address 0 — the chosen bits all fell inside
/// the /30's wildcard span, so the route had to replicate to every
/// partition for the home lookup to match the full lookup.
#[test]
fn pinned_regression_single_short_prefix_psi6_addr0() {
    let table = RoutingTable::from_entries([RouteEntry {
        prefix: Prefix::new(0, 30).expect("valid /30"),
        next_hop: NextHop(0),
    }]);
    let psi = 6;
    let bits = select_bits(&table, eta_for(psi));
    let part = Partitioning::new(&table, bits, psi);
    let tables = part.forwarding_tables(&table);
    let addr = 0u32;
    let home = part.home_of(addr) as usize;
    assert!(home < psi);
    assert_eq!(
        tables[home].longest_match(addr).map(|e| e.next_hop),
        table.longest_match(addr).map(|e| e.next_hop),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn home_lookup_equals_full_lookup(
        table in arb_table(60),
        psi in 1usize..=9,
        addrs in proptest::collection::vec(any::<u32>(), 24),
    ) {
        let bits = select_bits(&table, eta_for(psi));
        let part = Partitioning::new(&table, bits, psi);
        let tables = part.forwarding_tables(&table);
        for addr in addrs {
            let home = part.home_of(addr) as usize;
            prop_assert!(home < psi);
            prop_assert_eq!(
                tables[home].longest_match(addr).map(|e| e.next_hop),
                table.longest_match(addr).map(|e| e.next_hop),
                "addr {:#010x} psi {}", addr, psi
            );
        }
    }

    #[test]
    fn home_lookup_correct_for_arbitrary_bit_choices(
        table in arb_table(50),
        raw_bits in proptest::collection::hash_set(0u8..32, 0..4),
        addrs in proptest::collection::vec(any::<u32>(), 16),
    ) {
        // Correctness may not depend on choosing *good* bits.
        let bits: Vec<u8> = raw_bits.into_iter().collect();
        let psi = 1usize << bits.len();
        let part = Partitioning::new(&table, bits, psi);
        let tables = part.forwarding_tables(&table);
        for addr in addrs {
            let home = part.home_of(addr) as usize;
            prop_assert_eq!(
                tables[home].longest_match(addr).map(|e| e.next_hop),
                table.longest_match(addr).map(|e| e.next_hop),
                "addr {:#010x}", addr
            );
        }
    }

    #[test]
    fn rot_partitions_cover_and_only_replicate(
        table in arb_table(50),
        raw_bits in proptest::collection::hash_set(0u8..32, 1..4),
    ) {
        let bits: Vec<u8> = raw_bits.into_iter().collect();
        let parts = rot_partitions(&table, &bits);
        prop_assert_eq!(parts.len(), 1usize << bits.len());
        // Every route appears somewhere; total >= original (replication
        // only ever adds copies); a route with no wildcard in the chosen
        // bits appears exactly once.
        let total: usize = parts.iter().map(|p| p.len()).sum();
        prop_assert!(total >= table.len());
        for e in &table {
            let copies = parts
                .iter()
                .filter(|p| p.entries().iter().any(|x| x.prefix == e.prefix))
                .count();
            let wilds = bits.iter().filter(|&&b| b >= e.prefix.len()).count();
            prop_assert_eq!(copies, 1usize << wilds, "prefix {}", e.prefix);
        }
    }

    #[test]
    fn group_mapping_is_total_and_stable(
        table in arb_table(40),
        psi in 1usize..=8,
        addr in any::<u32>(),
    ) {
        let bits = select_bits(&table, eta_for(psi));
        let part = Partitioning::new(&table, bits, psi);
        let h1 = part.home_of(addr);
        let h2 = part.home_of(addr);
        prop_assert_eq!(h1, h2);
        prop_assert!((h1 as usize) < psi);
        // Every LC is reachable: the group->LC map is onto 0..psi.
        let mut seen = vec![false; psi];
        for g in 0..part.groups() {
            // Reconstruct an address hitting group g by setting the
            // chosen bits accordingly.
            let mut a = 0u32;
            for (i, &b) in part.bits().iter().enumerate() {
                if (g >> (part.bits().len() - 1 - i)) & 1 == 1 {
                    a |= 1 << (31 - b);
                }
            }
            seen[part.home_of(a) as usize] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s), "some LC unreachable");
    }
}
