//! Assertions pinned directly to claims in the paper's text — the
//! regression net for the reproduction itself.

use spal::cache::LrCacheConfig;
use spal::core::bits::{eta_for, select_bits};
use spal::core::partition::Partitioning;
use spal::core::{ForwardingTable, LpmAlgorithm};
use spal::lpm::model::FeTimingModel;
use spal::lpm::Lpm;
use spal::rib::stats::LengthDistribution;
use spal::rib::synth;
use spal::traffic::LcSpeed;

/// §3.1: "ψ doesn't have to be a power of 2 and can be any integer, say
/// 3, 5, 6, 7" — with η = ⌈log₂ψ⌉ bits.
#[test]
fn psi_any_integer() {
    let table = synth::synthesize(&synth::SynthConfig::sized(4_000, 21));
    for psi in [3usize, 5, 6, 7] {
        let eta = eta_for(psi);
        assert_eq!(eta, (psi as f64).log2().ceil() as usize);
        let part = Partitioning::new(&table, select_bits(&table, eta), psi);
        assert_eq!(part.forwarding_tables(&table).len(), psi);
    }
}

/// §3.1: "more than 83% [of prefixes] have length no more than 24",
/// which is what rules out high partitioning bits.
#[test]
fn synthetic_tables_match_backbone_length_profile() {
    let table = synth::synthesize(&synth::SynthConfig::sized(30_000, 22));
    let d = LengthDistribution::of(&table);
    assert!(d.fraction_at_most(24) > 0.83);
    assert_eq!(d.mode(), Some(24));
    let bits = select_bits(&table, 4);
    assert!(bits.iter().all(|&b| b < 24), "bits {bits:?}");
}

/// §5.1: 12 ns accesses + 120 ns code → 40 cycles (Lulea) / 62 (DP).
#[test]
fn fe_timing_model_reproduces_canonical_costs() {
    let m = FeTimingModel::default();
    assert_eq!(m.lookup_cycles(6.6), 40);
    assert_eq!(m.lookup_cycles(16.0), 62);
}

/// §5.1: packet generation — 2..18 cycles at 40 Gbps, 6..74 at 10 Gbps,
/// and 300,000 packets ≈ 15 ms (40G) / 60 ms (10G) at 256 B mean.
#[test]
fn arrival_model_matches_section_5_1() {
    assert_eq!(LcSpeed::Gbps40.gap_range(), (2, 18));
    assert_eq!(LcSpeed::Gbps10.gap_range(), (6, 74));
    let duration_40g = 300_000.0 * LcSpeed::Gbps40.mean_gap() * 5e-9;
    let duration_10g = 300_000.0 * LcSpeed::Gbps10.mean_gap() * 5e-9;
    assert!((duration_40g - 15e-3).abs() < 1e-3, "{duration_40g}");
    assert!((duration_10g - 60e-3).abs() < 4e-3, "{duration_10g}");
}

/// §5.2: γ = 50 % for β ≥ 2K, 25 % for β = 1K.
#[test]
fn gamma_rule() {
    assert!((LrCacheConfig::paper(1024).mix_rem_fraction - 0.25).abs() < 1e-12);
    for beta in [2048usize, 4096, 8192] {
        assert!((LrCacheConfig::paper(beta).mix_rem_fraction - 0.5).abs() < 1e-12);
    }
    // Degree of set associativity is 4, victim cache is 8 blocks (§3.2).
    let c = LrCacheConfig::paper(4096);
    assert_eq!(c.assoc, 4);
    assert_eq!(c.victim_blocks, 8);
}

/// §4: partitioning shrinks every structure's per-LC storage by far
/// more than the LR-cache it adds (24 KB at 4K × 6 B), for all three
/// tries and both ψ values.
#[test]
fn storage_savings_dominate_lr_cache() {
    let table = synth::synthesize(&synth::SynthConfig::sized(40_000, 23));
    for algo in [
        LpmAlgorithm::Dp,
        LpmAlgorithm::Lulea,
        LpmAlgorithm::Lc { fill_factor: 0.25 },
    ] {
        let whole = ForwardingTable::build(algo, &table).storage_bytes();
        for psi in [4usize, 16] {
            let part = Partitioning::new(&table, select_bits(&table, eta_for(psi)), psi);
            let max = part
                .forwarding_tables(&table)
                .iter()
                .map(|t| ForwardingTable::build(algo, t).storage_bytes())
                .max()
                .unwrap();
            let saving = whole.saturating_sub(max);
            assert!(
                saving > 4096 * 6,
                "algo {algo:?} psi {psi}: saving {saving} too small"
            );
        }
    }
}

/// §4 shape: the per-LC table shrinks roughly like 1/ψ, with small
/// replication overhead under the chosen bits.
#[test]
fn partition_sizes_scale_inversely_with_psi() {
    let table = synth::synthesize(&synth::SynthConfig::sized(30_000, 24));
    let s4 = Partitioning::new(&table, select_bits(&table, 2), 4).stats(&table);
    let s16 = Partitioning::new(&table, select_bits(&table, 4), 16).stats(&table);
    assert!(s4.max_size as f64 <= table.len() as f64 * 0.35);
    assert!(s16.max_size as f64 <= table.len() as f64 * 0.10);
    assert!(s4.replication_overhead() < 0.25);
    assert!(s16.replication_overhead() < 0.40);
}

/// §2.3 / ref [1]: length-based partitions are dominated by /24.
#[test]
fn length_partitioning_is_imbalanced() {
    use spal::core::baseline::partition_by_length;
    let table = synth::synthesize(&synth::SynthConfig::sized(30_000, 25));
    let parts = partition_by_length(&table, 8);
    let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
    let max = *sizes.iter().max().unwrap();
    let min = *sizes.iter().min().unwrap();
    // The /24 class alone (≈half the table) pins one partition far above
    // a balanced share.
    assert!(max as f64 >= 2.0 * min.max(1) as f64, "sizes {sizes:?}");
}
