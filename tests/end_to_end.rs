//! Cross-crate integration: the full SPAL pipeline — synthetic table →
//! bit selection → ROT-partitions → per-LC tries → LR-caches → cycle
//! simulation — checked against the linear full-table oracle.

use rand::{Rng, SeedableRng};
use spal::cache::LrCacheConfig;
use spal::core::bits::{eta_for, select_bits};
use spal::core::partition::Partitioning;
use spal::core::{ForwardingTable, LpmAlgorithm, SpalRouter, SpalRouterConfig};
use spal::lpm::Lpm;
use spal::rib::synth;
use spal::sim::{RouterKind, RouterSim, SimConfig};
use spal::traffic::{preset, PresetName, TracePreset};

fn addresses(table: &spal::rib::RoutingTable, n: usize, seed: u64) -> Vec<u32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut addrs: Vec<u32> = (0..n / 2).map(|_| rng.gen()).collect();
    while addrs.len() < n {
        let e = table.entries()[rng.gen_range(0..table.len())];
        addrs.push(e.prefix.first_addr() + (rng.gen::<u64>() % e.prefix.size()) as u32);
    }
    addrs
}

#[test]
fn partitioned_tries_equal_full_table_for_every_algorithm() {
    let table = synth::synthesize(&synth::SynthConfig::sized(8_000, 1));
    for psi in [3usize, 4, 16] {
        let bits = select_bits(&table, eta_for(psi));
        let part = Partitioning::new(&table, bits, psi);
        let partitions = part.forwarding_tables(&table);
        for algo in [
            LpmAlgorithm::Binary,
            LpmAlgorithm::Dp,
            LpmAlgorithm::Lulea,
            LpmAlgorithm::Lc { fill_factor: 0.25 },
        ] {
            let tries: Vec<ForwardingTable> = partitions
                .iter()
                .map(|t| ForwardingTable::build(algo, t))
                .collect();
            for &addr in addresses(&table, 400, 2).iter() {
                let home = part.home_of(addr) as usize;
                assert_eq!(
                    tries[home].lookup(addr),
                    table.longest_match(addr).map(|e| e.next_hop),
                    "psi={psi} algo={} addr={addr:#010x}",
                    tries[home].name()
                );
            }
        }
    }
}

#[test]
fn functional_router_and_simulator_agree_on_sharing_semantics() {
    let table = synth::synthesize(&synth::SynthConfig::sized(5_000, 3));
    // Functional router: exact per-lookup outcomes.
    let mut router = SpalRouter::build(
        &table,
        &SpalRouterConfig {
            psi: 4,
            algorithm: LpmAlgorithm::Lulea,
            cache: LrCacheConfig {
                blocks: 1024,
                ..LrCacheConfig::default()
            },
        },
    );
    for &addr in addresses(&table, 2_000, 4).iter() {
        let (nh, _) = router.lookup((addr % 4) as u16, addr);
        assert_eq!(nh, table.longest_match(addr).map(|e| e.next_hop));
    }

    // Simulator: same table, every packet completes, FE work is shared.
    let p = TracePreset {
        distinct: 2_000,
        ..preset(PresetName::D75)
    };
    let traces = p.generate(&table, 4 * 5_000, 5).split(4);
    let report = RouterSim::new(
        &table,
        &traces,
        SimConfig {
            kind: RouterKind::Spal,
            psi: 4,
            cache: LrCacheConfig {
                blocks: 1024,
                ..LrCacheConfig::default()
            },
            packets_per_lc: 5_000,
            seed: 5,
            ..SimConfig::default()
        },
    )
    .run();
    assert_eq!(report.latency.count(), 4 * 5_000);
    let fe_total: u64 = report.per_lc.iter().map(|l| l.fe_lookups).sum();
    // Sharing: far fewer FE lookups than packets.
    assert!(fe_total < 4 * 5_000 / 2, "fe lookups {fe_total}");
}

#[test]
fn spal_reduces_fe_load_versus_baselines() {
    let table = synth::synthesize(&synth::SynthConfig::sized(5_000, 7));
    let p = TracePreset {
        distinct: 2_000,
        ..preset(PresetName::D81)
    };
    let traces = p.generate(&table, 4 * 4_000, 9).split(4);
    let run = |kind: RouterKind| {
        RouterSim::new(
            &table,
            &traces,
            SimConfig {
                kind,
                psi: 4,
                cache: LrCacheConfig {
                    blocks: 512,
                    ..LrCacheConfig::default()
                },
                packets_per_lc: 4_000,
                seed: 9,
                ..SimConfig::default()
            },
        )
        .run()
    };
    let spal = run(RouterKind::Spal);
    let cache_only = run(RouterKind::CacheOnly);
    let fe = |r: &spal::sim::SimReport| r.per_lc.iter().map(|l| l.fe_lookups).sum::<u64>();
    assert!(fe(&spal) < fe(&cache_only));
    // Both complete everything.
    assert_eq!(spal.latency.count(), 4 * 4_000);
    assert_eq!(cache_only.latency.count(), 4 * 4_000);
    // And SPAL's mean lookup is no worse.
    assert!(spal.mean_lookup_cycles() <= cache_only.mean_lookup_cycles() * 1.05);
}

#[test]
fn storage_claim_holds_end_to_end() {
    // Sec. 4's conclusion: per-LC SRAM saving from partitioning dwarfs
    // the LR-cache added (4K blocks x 6 B = 24 KB).
    let table = synth::synthesize(&synth::SynthConfig::sized(40_000, 11));
    let whole = ForwardingTable::build(LpmAlgorithm::Lulea, &table).storage_bytes();
    let bits = select_bits(&table, 4);
    let part = Partitioning::new(&table, bits, 16);
    let max_part = part
        .forwarding_tables(&table)
        .iter()
        .map(|t| ForwardingTable::build(LpmAlgorithm::Lulea, t).storage_bytes())
        .max()
        .unwrap();
    let saving = whole - max_part;
    assert!(
        saving > 4096 * 6,
        "saving {saving} must exceed the 24 KB LR-cache"
    );
}

#[test]
fn update_flush_preserves_correctness() {
    let table = synth::synthesize(&synth::SynthConfig::sized(3_000, 13));
    let mut router = SpalRouter::build(
        &table,
        &SpalRouterConfig {
            psi: 2,
            algorithm: LpmAlgorithm::Dp,
            cache: LrCacheConfig {
                blocks: 256,
                ..LrCacheConfig::default()
            },
        },
    );
    let addrs = addresses(&table, 300, 15);
    for &a in &addrs {
        router.lookup(0, a);
    }
    router.flush_caches();
    for &a in &addrs {
        let (nh, _) = router.lookup(1, a);
        assert_eq!(nh, table.longest_match(a).map(|e| e.next_hop));
    }
}
