//! Robustness of the text parsers: arbitrary input must never panic,
//! and well-formed data must round-trip exactly.

use proptest::prelude::*;
use spal::rib::parse::{parse_table, table_to_string};
use spal::rib::{NextHop, Prefix, RouteEntry, RoutingTable};
use spal::traffic::Trace;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn table_parser_never_panics(input in ".{0,200}") {
        let _ = parse_table(&input); // any Result is fine; panics are not
    }

    #[test]
    fn trace_parser_never_panics(input in ".{0,200}") {
        let _ = Trace::read_text("fuzz", input.as_bytes());
    }

    #[test]
    fn prefix_parser_never_panics(input in ".{0,40}") {
        let _ = input.parse::<Prefix>();
    }

    #[test]
    fn table_roundtrip_is_exact(
        routes in proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u16>()), 0..60),
    ) {
        let table = RoutingTable::from_entries(routes.into_iter().map(|(b, l, nh)| RouteEntry {
            prefix: Prefix::new(b, l).unwrap(),
            next_hop: NextHop(nh),
        }));
        let text = table_to_string(&table);
        let back = parse_table(&text).expect("own output parses");
        prop_assert_eq!(back.entries(), table.entries());
    }

    #[test]
    fn prefix_display_roundtrip(bits in any::<u32>(), len in 0u8..=32) {
        let p = Prefix::new(bits, len).unwrap();
        let back: Prefix = p.to_string().parse().expect("own display parses");
        prop_assert_eq!(back, p);
    }

    #[test]
    fn trace_roundtrip_is_exact(dests in proptest::collection::vec(any::<u32>(), 0..80)) {
        let trace = Trace::new("t", dests);
        let mut buf = Vec::new();
        trace.write_text(&mut buf).expect("write to Vec");
        let back = Trace::read_text("t", buf.as_slice()).expect("own output parses");
        prop_assert_eq!(back.destinations(), trace.destinations());
    }
}
