//! Property-based tests for the LR-cache, checked against a reference
//! model: whatever replacement does, a hit must return the value most
//! recently filled for that address, waiting entries must complete
//! exactly once, and structural invariants (occupancy bounds, flush
//! semantics) must hold under arbitrary operation sequences.

use proptest::prelude::*;
use spal::cache::{
    FillOutcome, LrCache, LrCacheConfig, MixMode, Origin, ProbeResult, ReplacementPolicy,
    ReserveOutcome,
};
use std::collections::HashMap;

/// One step of an arbitrary cache workload.
#[derive(Debug, Clone)]
enum Op {
    Probe(u32),
    Reserve(u32),
    Fill(u32, u16, bool), // bool = REM
    Flush,
}

fn arb_ops(addr_space: u32, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0..addr_space).prop_map(Op::Probe),
            2 => (0..addr_space).prop_map(Op::Reserve),
            3 => (0..addr_space, any::<u16>(), any::<bool>())
                .prop_map(|(a, v, r)| Op::Fill(a, v, r)),
            1 => Just(Op::Flush),
        ],
        0..len,
    )
}

fn arb_config() -> impl Strategy<Value = LrCacheConfig> {
    (
        prop::sample::select(vec![1usize, 2, 4, 8]),
        prop::sample::select(vec![1usize, 2, 4, 8]),
        prop::sample::select(vec![0.0f64, 0.25, 0.5, 0.75, 1.0]),
        prop::sample::select(vec![0usize, 2, 8]),
        prop::sample::select(vec![
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ]),
        any::<bool>(),
    )
        .prop_map(
            |(sets, assoc, gamma, victim, policy, enforce)| LrCacheConfig {
                blocks: sets * assoc,
                assoc,
                mix_rem_fraction: gamma,
                mix_mode: if enforce {
                    MixMode::Enforce
                } else {
                    MixMode::Ignore
                },
                policy,
                victim_blocks: victim,
                seed: 99,
                ..LrCacheConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hits_always_return_the_last_filled_value(
        config in arb_config(),
        ops in arb_ops(64, 120),
    ) {
        let mut cache: LrCache<u16> = LrCache::new(config);
        // Reference: last value filled per address since the last flush.
        let mut truth: HashMap<u32, u16> = HashMap::new();
        for op in ops {
            match op {
                Op::Probe(a) => match cache.probe(a) {
                    ProbeResult::Hit { value, .. } => {
                        prop_assert_eq!(
                            Some(&value), truth.get(&a),
                            "hit for {:#x} returned stale value", a
                        );
                    }
                    ProbeResult::HitWaiting | ProbeResult::Miss => {}
                },
                Op::Reserve(a) => {
                    // Reserving after a miss is the intended protocol, but
                    // the cache must tolerate arbitrary call orders.
                    let _ = cache.reserve(a);
                }
                Op::Fill(a, v, rem) => {
                    let origin = if rem { Origin::Rem } else { Origin::Loc };
                    let outcome = cache.fill(a, v, origin);
                    if outcome != FillOutcome::Dropped {
                        truth.insert(a, v);
                    } else {
                        truth.remove(&a);
                    }
                }
                Op::Flush => {
                    cache.flush();
                    truth.clear();
                }
            }
        }
    }

    #[test]
    fn occupancy_never_exceeds_capacity(
        config in arb_config(),
        ops in arb_ops(256, 150),
    ) {
        let blocks = config.blocks;
        let mut cache: LrCache<u16> = LrCache::new(config);
        for op in ops {
            match op {
                Op::Probe(a) => { let _ = cache.probe(a); }
                Op::Reserve(a) => { let _ = cache.reserve(a); }
                Op::Fill(a, v, rem) => {
                    let _ = cache.fill(a, v, if rem { Origin::Rem } else { Origin::Loc });
                }
                Op::Flush => cache.flush(),
            }
            let (loc, rem) = cache.occupancy();
            prop_assert!(loc + rem + cache.waiting_count() <= blocks);
        }
    }

    #[test]
    fn reserve_then_fill_completes_waiting(
        config in arb_config(),
        addr in any::<u32>(),
        value in any::<u16>(),
    ) {
        let mut cache: LrCache<u16> = LrCache::new(config);
        if cache.reserve(addr) == ReserveOutcome::Reserved {
            prop_assert_eq!(cache.probe(addr), ProbeResult::HitWaiting);
            prop_assert_eq!(
                cache.fill(addr, value, Origin::Loc),
                FillOutcome::CompletedWaiting
            );
            prop_assert_eq!(
                cache.probe(addr),
                ProbeResult::Hit { value, origin: Origin::Loc }
            );
        }
    }

    #[test]
    fn flush_leaves_nothing_behind(
        config in arb_config(),
        ops in arb_ops(64, 60),
        probes in proptest::collection::vec(0u32..64, 8),
    ) {
        let mut cache: LrCache<u16> = LrCache::new(config);
        for op in ops {
            match op {
                Op::Probe(a) => { let _ = cache.probe(a); }
                Op::Reserve(a) => { let _ = cache.reserve(a); }
                Op::Fill(a, v, rem) => {
                    let _ = cache.fill(a, v, if rem { Origin::Rem } else { Origin::Loc });
                }
                Op::Flush => cache.flush(),
            }
        }
        cache.flush();
        prop_assert_eq!(cache.occupancy(), (0, 0));
        prop_assert_eq!(cache.waiting_count(), 0);
        for a in probes {
            prop_assert_eq!(cache.probe(a), ProbeResult::Miss);
        }
    }

    #[test]
    fn stats_are_consistent(
        config in arb_config(),
        ops in arb_ops(64, 100),
    ) {
        let mut cache: LrCache<u16> = LrCache::new(config);
        let mut probes = 0u64;
        for op in ops {
            match op {
                Op::Probe(a) => { probes += 1; let _ = cache.probe(a); }
                Op::Reserve(a) => { let _ = cache.reserve(a); }
                Op::Fill(a, v, rem) => {
                    let _ = cache.fill(a, v, if rem { Origin::Rem } else { Origin::Loc });
                }
                Op::Flush => cache.flush(),
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.probes(), probes);
        prop_assert!(s.hit_rate() >= 0.0 && s.hit_rate() <= 1.0);
    }
}
