//! Property-based tests for the IPv6 side: prefix semantics, the
//! generic partitioner (§6's "feasibly applicable to IPv6"), and the
//! 128-bit LR-cache invalidation path the v6 dataplane leans on —
//! `LrCache6::invalidate_covered` exactness (including the /0 and /128
//! edges) and the version gate that keeps stale fabric replies out
//! after a moved prefix's remap invalidation.

use proptest::prelude::*;
use spal::cache::{LrCache6, LrCacheConfig, Origin, ProbeResult};
use spal::core::v6::Partitioning6;
use spal::dataplane::{VersionedCache, VersionedFill};
use spal::rib::v6::{Prefix6, RouteEntry6, RoutingTable6};
use spal::rib::NextHop;

fn arb_prefix6() -> impl Strategy<Value = Prefix6> {
    (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Prefix6::new(bits, len).expect("len ok"))
}

fn cache6(blocks: usize) -> LrCache6<u16> {
    LrCache6::new(LrCacheConfig {
        blocks,
        assoc: 4,
        ..Default::default()
    })
}

fn arb_table6(max_routes: usize) -> impl Strategy<Value = RoutingTable6> {
    proptest::collection::vec((arb_prefix6(), 0u16..16), 1..max_routes).prop_map(|v| {
        RoutingTable6::from_entries(v.into_iter().map(|(prefix, nh)| RouteEntry6 {
            prefix,
            next_hop: NextHop(nh),
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prefix6_canonical_and_matching(bits in any::<u128>(), len in 0u8..=128) {
        let p = Prefix6::new(bits, len).unwrap();
        // Canonical: re-masking is a no-op.
        prop_assert_eq!(Prefix6::new(p.bits(), len).unwrap(), p);
        // The prefix matches its own base and everything inside.
        prop_assert!(p.matches(p.bits()));
        if len < 128 {
            let inside = p.bits() | (1u128 << (127 - len));
            prop_assert!(p.matches(inside));
        }
        // Containment is reflexive and respects length.
        prop_assert!(p.contains(p));
        if len > 0 {
            let shorter = Prefix6::new(p.bits(), len - 1).unwrap();
            prop_assert!(shorter.contains(p));
        }
    }

    #[test]
    fn tri_bit_consistency_v6(bits in any::<u128>(), len in 0u8..=128, i in 0u8..128) {
        use spal::rib::bits::TriBit;
        let p = Prefix6::new(bits, len).unwrap();
        let t = p.tri_bit(i);
        if i >= len {
            prop_assert_eq!(t, TriBit::Wild);
        } else {
            // A concrete bit matches exactly one value.
            prop_assert!(t.matches(true) != t.matches(false));
        }
    }

    #[test]
    fn home_lookup_equals_full_lookup_v6(
        table in arb_table6(40),
        psi in 1usize..=6,
        addrs in proptest::collection::vec(any::<u128>(), 12),
    ) {
        let eta = spal::core::bits::eta_for(psi);
        let prefixes: Vec<Prefix6> = table.entries().iter().map(|e| e.prefix).collect();
        let bits = spal::core::bits::select_bits_generic(
            &prefixes, eta, 127, spal::core::BitSelectionStrategy::MinimizeMax,
        );
        let part = Partitioning6::new(&table, bits, psi);
        let fragments = part.forwarding_tables(&table);
        for addr in addrs {
            let home = part.home_of(addr) as usize;
            prop_assert!(home < psi);
            prop_assert_eq!(
                fragments[home].longest_match(addr).map(|e| e.next_hop),
                table.longest_match(addr).map(|e| e.next_hop),
                "addr {:#034x}", addr
            );
        }
    }

    #[test]
    fn lr_cache6_invalidate_covered_is_exact(
        prefix in arb_prefix6(),
        addrs in proptest::collection::vec(any::<u128>(), 1..80),
        biased in 0usize..4,
    ) {
        let mut cache = cache6(32);
        for (i, &addr) in addrs.iter().enumerate() {
            // Bias some fills inside the prefix so the covered set is
            // rarely empty even for long prefixes.
            let addr = if i % 4 == biased && prefix.len() < 128 {
                prefix.bits() | (addr >> prefix.len())
            } else {
                addr
            };
            cache.fill(addr, i as u16, Origin::Loc);
        }
        let before: Vec<(u128, u16)> = cache.entries().collect();
        let covered_before = before
            .iter()
            .filter(|&&(a, _)| prefix.matches(a))
            .count();
        let dropped = cache.invalidate_covered(prefix.bits(), prefix.len());
        prop_assert_eq!(dropped, covered_before);
        let mut after: Vec<(u128, u16)> = cache.entries().collect();
        // Exactly the uncovered entries survive, values intact.
        let mut expect: Vec<(u128, u16)> = before
            .into_iter()
            .filter(|&(a, _)| !prefix.matches(a))
            .collect();
        after.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(after, expect);
    }

    #[test]
    fn lr_cache6_invalidation_edges(
        addrs in proptest::collection::vec(any::<u128>(), 1..48),
        target in 0usize..48,
    ) {
        // /128: evicts exactly the one address, nothing else.
        let mut cache = cache6(32);
        for (i, &addr) in addrs.iter().enumerate() {
            cache.fill(addr, i as u16, Origin::Loc);
        }
        let target = addrs[target % addrs.len()];
        let resident: Vec<(u128, u16)> = cache.entries().collect();
        let dropped = cache.invalidate_covered(target, 128);
        let held = resident.iter().filter(|&&(a, _)| a == target).count();
        prop_assert_eq!(dropped, held);
        prop_assert!(cache.entries().all(|(a, _)| a != target));
        prop_assert_eq!(cache.entries().count(), resident.len() - held);

        // /0: a full flush regardless of the bits argument.
        let dropped = cache.invalidate_covered(target, 0);
        prop_assert_eq!(dropped, resident.len() - held);
        prop_assert_eq!(cache.entries().count(), 0);
    }

    #[test]
    fn versioned_cache6_remap_invalidation_gates_stale_replies(
        prefix in arb_prefix6(),
        addr_bits in any::<u128>(),
        version in 1u64..32,
    ) {
        // The v6 dataplane path for a moved prefix: the control plane
        // re-publishes and broadcasts a targeted invalidation; cached
        // results under the prefix vanish, and any fabric reply stamped
        // with an older table version must not repopulate the cache.
        let mut vc: VersionedCache<u16, u128> = VersionedCache::new(cache6(32));
        let covered = if prefix.len() >= 128 {
            prefix.bits()
        } else {
            prefix.bits() | (addr_bits >> prefix.len())
        };
        vc.fill_local(covered, 7, Origin::Loc);
        prop_assert!(matches!(vc.probe(covered), ProbeResult::Hit { value: 7, .. }));
        let dropped = vc.apply_invalidation(prefix.bits(), prefix.len(), version);
        prop_assert!(dropped >= 1);
        prop_assert_eq!(vc.probe(covered), ProbeResult::Miss);

        // Stale reply (computed against the pre-remap table): dropped,
        // and the re-reserved waiter is evicted so a follower re-asks.
        vc.reserve(covered);
        prop_assert_eq!(
            vc.fill_versioned(covered, 9, Origin::Rem, version - 1),
            VersionedFill::StaleDropped
        );
        prop_assert_eq!(vc.probe(covered), ProbeResult::Miss);

        // Current reply: cached.
        prop_assert!(matches!(
            vc.fill_versioned(covered, 9, Origin::Rem, version),
            VersionedFill::Cached(_)
        ));
        prop_assert!(matches!(vc.probe(covered), ProbeResult::Hit { value: 9, .. }));
    }

    #[test]
    fn generic_binary_trie_matches_v6_oracle(
        table in arb_table6(40),
        addrs in proptest::collection::vec(any::<u128>(), 12),
    ) {
        use spal::lpm::binary::GenericBinaryTrie;
        let mut trie: GenericBinaryTrie<u128> = GenericBinaryTrie::new();
        for e in table.entries() {
            trie.insert(e.prefix.bits(), e.prefix.len(), e.next_hop);
        }
        let mut probes = addrs;
        for e in table.entries() {
            probes.push(e.prefix.bits());
            probes.push(e.prefix.bits() | !u128::MAX.checked_shl(128 - e.prefix.len() as u32).unwrap_or(0));
        }
        for addr in probes {
            prop_assert_eq!(
                trie.lookup_generic(addr),
                table.longest_match(addr).map(|e| e.next_hop)
            );
        }
    }
}
