//! Property-based tests for the IPv6 side: prefix semantics and the
//! generic partitioner (§6's "feasibly applicable to IPv6").

use proptest::prelude::*;
use spal::core::v6::Partitioning6;
use spal::rib::v6::{Prefix6, RouteEntry6, RoutingTable6};
use spal::rib::NextHop;

fn arb_prefix6() -> impl Strategy<Value = Prefix6> {
    (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Prefix6::new(bits, len).expect("len ok"))
}

fn arb_table6(max_routes: usize) -> impl Strategy<Value = RoutingTable6> {
    proptest::collection::vec((arb_prefix6(), 0u16..16), 1..max_routes).prop_map(|v| {
        RoutingTable6::from_entries(v.into_iter().map(|(prefix, nh)| RouteEntry6 {
            prefix,
            next_hop: NextHop(nh),
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prefix6_canonical_and_matching(bits in any::<u128>(), len in 0u8..=128) {
        let p = Prefix6::new(bits, len).unwrap();
        // Canonical: re-masking is a no-op.
        prop_assert_eq!(Prefix6::new(p.bits(), len).unwrap(), p);
        // The prefix matches its own base and everything inside.
        prop_assert!(p.matches(p.bits()));
        if len < 128 {
            let inside = p.bits() | (1u128 << (127 - len));
            prop_assert!(p.matches(inside));
        }
        // Containment is reflexive and respects length.
        prop_assert!(p.contains(p));
        if len > 0 {
            let shorter = Prefix6::new(p.bits(), len - 1).unwrap();
            prop_assert!(shorter.contains(p));
        }
    }

    #[test]
    fn tri_bit_consistency_v6(bits in any::<u128>(), len in 0u8..=128, i in 0u8..128) {
        use spal::rib::bits::TriBit;
        let p = Prefix6::new(bits, len).unwrap();
        let t = p.tri_bit(i);
        if i >= len {
            prop_assert_eq!(t, TriBit::Wild);
        } else {
            // A concrete bit matches exactly one value.
            prop_assert!(t.matches(true) != t.matches(false));
        }
    }

    #[test]
    fn home_lookup_equals_full_lookup_v6(
        table in arb_table6(40),
        psi in 1usize..=6,
        addrs in proptest::collection::vec(any::<u128>(), 12),
    ) {
        let eta = spal::core::bits::eta_for(psi);
        let prefixes: Vec<Prefix6> = table.entries().iter().map(|e| e.prefix).collect();
        let bits = spal::core::bits::select_bits_generic(
            &prefixes, eta, 127, spal::core::BitSelectionStrategy::MinimizeMax,
        );
        let part = Partitioning6::new(&table, bits, psi);
        let fragments = part.forwarding_tables(&table);
        for addr in addrs {
            let home = part.home_of(addr) as usize;
            prop_assert!(home < psi);
            prop_assert_eq!(
                fragments[home].longest_match(addr).map(|e| e.next_hop),
                table.longest_match(addr).map(|e| e.next_hop),
                "addr {:#034x}", addr
            );
        }
    }

    #[test]
    fn generic_binary_trie_matches_v6_oracle(
        table in arb_table6(40),
        addrs in proptest::collection::vec(any::<u128>(), 12),
    ) {
        use spal::lpm::binary::GenericBinaryTrie;
        let mut trie: GenericBinaryTrie<u128> = GenericBinaryTrie::new();
        for e in table.entries() {
            trie.insert(e.prefix.bits(), e.prefix.len(), e.next_hop);
        }
        let mut probes = addrs;
        for e in table.entries() {
            probes.push(e.prefix.bits());
            probes.push(e.prefix.bits() | !u128::MAX.checked_shl(128 - e.prefix.len() as u32).unwrap_or(0));
        }
        for addr in probes {
            prop_assert_eq!(
                trie.lookup_generic(addr),
                table.longest_match(addr).map(|e| e.next_hop)
            );
        }
    }
}
