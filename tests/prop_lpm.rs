//! Property-based tests: every LPM implementation agrees with the
//! linear reference matcher on arbitrary prefix sets and addresses.

use proptest::prelude::*;
use spal::core::{ForwardingTable, LpmAlgorithm};
use spal::lpm::Lpm;
use spal::rib::{NextHop, Prefix, RouteEntry, RoutingTable};

/// An arbitrary canonical prefix: random bits masked to a random length.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(bits, len)| Prefix::new(bits, len).expect("len <= 32"))
}

fn arb_table(max_routes: usize) -> impl Strategy<Value = RoutingTable> {
    proptest::collection::vec((arb_prefix(), 0u16..64), 0..max_routes).prop_map(|v| {
        RoutingTable::from_entries(v.into_iter().map(|(prefix, nh)| RouteEntry {
            prefix,
            next_hop: NextHop(nh),
        }))
    })
}

/// Addresses biased toward prefix boundaries (first/last covered
/// address) plus uniform randoms — the corners where trie bugs live.
fn probe_addresses(table: &RoutingTable, randoms: &[u32]) -> Vec<u32> {
    let mut addrs: Vec<u32> = randoms.to_vec();
    for e in table {
        addrs.push(e.prefix.first_addr());
        addrs.push(e.prefix.last_addr());
        addrs.push(e.prefix.first_addr().wrapping_sub(1));
        addrs.push(e.prefix.last_addr().wrapping_add(1));
    }
    addrs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_trie_matches_oracle(
        table in arb_table(60),
        randoms in proptest::collection::vec(any::<u32>(), 16),
    ) {
        let trie = ForwardingTable::build(LpmAlgorithm::Binary, &table);
        for addr in probe_addresses(&table, &randoms) {
            prop_assert_eq!(
                trie.lookup(addr),
                table.longest_match(addr).map(|e| e.next_hop),
                "addr {:#010x}", addr
            );
        }
    }

    #[test]
    fn dp_trie_matches_oracle(
        table in arb_table(60),
        randoms in proptest::collection::vec(any::<u32>(), 16),
    ) {
        let trie = ForwardingTable::build(LpmAlgorithm::Dp, &table);
        for addr in probe_addresses(&table, &randoms) {
            prop_assert_eq!(
                trie.lookup(addr),
                table.longest_match(addr).map(|e| e.next_hop),
                "addr {:#010x}", addr
            );
        }
    }

    #[test]
    fn lulea_trie_matches_oracle(
        table in arb_table(60),
        randoms in proptest::collection::vec(any::<u32>(), 16),
    ) {
        let trie = ForwardingTable::build(LpmAlgorithm::Lulea, &table);
        for addr in probe_addresses(&table, &randoms) {
            prop_assert_eq!(
                trie.lookup(addr),
                table.longest_match(addr).map(|e| e.next_hop),
                "addr {:#010x}", addr
            );
        }
    }

    #[test]
    fn lc_trie_matches_oracle_across_fill_factors(
        table in arb_table(60),
        randoms in proptest::collection::vec(any::<u32>(), 16),
        fill in prop::sample::select(vec![0.125f64, 0.25, 0.5, 1.0]),
    ) {
        let trie = ForwardingTable::build(LpmAlgorithm::Lc { fill_factor: fill }, &table);
        for addr in probe_addresses(&table, &randoms) {
            prop_assert_eq!(
                trie.lookup(addr),
                table.longest_match(addr).map(|e| e.next_hop),
                "addr {:#010x} fill {}", addr, fill
            );
        }
    }

    #[test]
    fn dp_insert_remove_roundtrip(
        routes in proptest::collection::vec((arb_prefix(), 0u16..8), 1..40),
        remove_mask in proptest::collection::vec(any::<bool>(), 40),
        randoms in proptest::collection::vec(any::<u32>(), 16),
    ) {
        use spal::lpm::dp::DpTrie;
        // Insert everything, remove a random subset, compare with the
        // oracle built from the survivors.
        let mut trie = DpTrie::new();
        let mut survivors: Vec<RouteEntry> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (i, &(prefix, nh)) in routes.iter().enumerate() {
            trie.insert(prefix, NextHop(nh));
            if !seen.insert(prefix) {
                survivors.retain(|e| e.prefix != prefix);
            }
            survivors.push(RouteEntry { prefix, next_hop: NextHop(nh) });
            if *remove_mask.get(i).unwrap_or(&false) {
                trie.remove(prefix);
                survivors.retain(|e| e.prefix != prefix);
            }
        }
        let oracle = RoutingTable::from_entries(survivors.iter().copied());
        prop_assert_eq!(trie.route_count(), oracle.len());
        for addr in probe_addresses(&oracle, &randoms) {
            prop_assert_eq!(
                spal::lpm::Lpm::lookup(&trie, addr),
                oracle.longest_match(addr).map(|e| e.next_hop),
                "addr {:#010x}", addr
            );
        }
    }

    #[test]
    fn multibit_matches_oracle_for_random_strides(
        table in arb_table(50),
        cuts in proptest::collection::btree_set(1u8..32, 0..5),
        randoms in proptest::collection::vec(any::<u32>(), 12),
    ) {
        // Random cut points partition 32 bits into a stride vector.
        use spal::lpm::multibit::MultibitTrie;
        let mut strides = Vec::new();
        let mut prev = 0u8;
        for c in cuts {
            // Strides wider than 24 are rejected by the builder; clamp by
            // splitting oversized segments.
            let mut seg = c - prev;
            while seg > 24 {
                strides.push(24);
                seg -= 24;
            }
            if seg > 0 {
                strides.push(seg);
            }
            prev = c;
        }
        let mut tail = 32 - prev;
        while tail > 24 {
            strides.push(24);
            tail -= 24;
        }
        if tail > 0 {
            strides.push(tail);
        }
        let trie = MultibitTrie::build(&table, &strides);
        for addr in probe_addresses(&table, &randoms) {
            prop_assert_eq!(
                trie.lookup(addr),
                table.longest_match(addr).map(|e| e.next_hop),
                "addr {:#010x} strides {:?}", addr, trie.strides()
            );
        }
    }

    #[test]
    fn access_counts_are_sane(
        table in arb_table(40),
        randoms in proptest::collection::vec(any::<u32>(), 8),
    ) {
        for algo in [LpmAlgorithm::Binary, LpmAlgorithm::Dp, LpmAlgorithm::Lulea,
                     LpmAlgorithm::Lc { fill_factor: 0.25 }] {
            let trie = ForwardingTable::build(algo, &table);
            for &addr in &randoms {
                let c = trie.lookup_counted(addr);
                prop_assert!(c.mem_accesses >= 1);
                prop_assert!(c.mem_accesses < 200, "{} accesses", c.mem_accesses);
            }
        }
    }
}
