//! Cross-model validation: independent components must agree with each
//! other — the reuse-distance analysis predicts what the simulated
//! LR-cache measures, and the functional router predicts what the cycle
//! simulator does.

use spal::cache::LrCacheConfig;
use spal::rib::synth;
use spal::sim::{RouterKind, RouterSim, SimConfig};
use spal::traffic::analysis::ReuseProfile;
use spal::traffic::{preset, PresetName, TracePreset};

/// The ψ=1 SPAL simulation's cache hit rate must sit a little below the
/// fully-associative LRU bound the reuse profile predicts (set conflicts
/// cost something; the victim cache recovers most of it).
#[test]
fn simulated_hit_rate_tracks_reuse_distance_prediction() {
    let table = synth::synthesize(&synth::SynthConfig::sized(10_000, 77));
    let p = TracePreset {
        distinct: 6_000,
        ..preset(PresetName::D75)
    };
    let packets = 60_000;
    let trace = p.generate(&table, packets, 5);
    let beta = 2048usize;

    let predicted = ReuseProfile::of(&trace, beta + 1).lru_hit_rate(beta);

    let report = RouterSim::new(
        &table,
        &[trace],
        SimConfig {
            kind: RouterKind::Spal,
            psi: 1,
            cache: LrCacheConfig {
                blocks: beta,
                ..LrCacheConfig::default()
            },
            packets_per_lc: packets,
            seed: 5,
            ..SimConfig::default()
        },
    )
    .run();
    let measured = report.hit_rate();

    assert!(
        measured <= predicted + 0.01,
        "set-associative cache cannot beat the fully-associative LRU bound: \
         measured {measured:.4} vs predicted {predicted:.4}"
    );
    assert!(
        measured >= predicted - 0.05,
        "4-way + victim should stay within a few points of the bound: \
         measured {measured:.4} vs predicted {predicted:.4}"
    );
}

/// The untimed functional router and the cycle simulator run the same
/// protocol, so their *work* counters (FE lookups) must be in the same
/// neighbourhood on the same workload (timing changes interleaving, and
/// in-flight coalescing differs, but not the big picture).
#[test]
fn functional_router_and_simulator_fe_work_agree() {
    use spal::core::{LpmAlgorithm, SpalRouter, SpalRouterConfig};
    let table = synth::synthesize(&synth::SynthConfig::sized(8_000, 79));
    let p = TracePreset {
        distinct: 3_000,
        ..preset(PresetName::L92_1)
    };
    let psi = 4usize;
    let packets = 20_000;
    let streams = p.generate(&table, packets * psi, 9).split(psi);
    let cache = LrCacheConfig {
        blocks: 1024,
        ..LrCacheConfig::default()
    };

    // Functional pass: interleave the per-LC streams round-robin, the
    // same order the simulator admits them on identical arrival clocks.
    let mut router = SpalRouter::build(
        &table,
        &SpalRouterConfig {
            psi,
            algorithm: LpmAlgorithm::Lulea,
            cache: cache.clone(),
        },
    );
    for i in 0..packets {
        for (lc, s) in streams.iter().enumerate() {
            router.lookup(lc as u16, s.destinations()[i]);
        }
    }
    let functional_fe: u64 = router.fe_lookups().iter().sum();

    let report = RouterSim::new(
        &table,
        &streams,
        SimConfig {
            kind: RouterKind::Spal,
            psi,
            cache,
            packets_per_lc: packets,
            seed: 9,
            ..SimConfig::default()
        },
    )
    .run();
    let simulated_fe: u64 = report.per_lc.iter().map(|l| l.fe_lookups).sum();

    let ratio = simulated_fe as f64 / functional_fe as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "FE work diverged: functional {functional_fe} vs simulated {simulated_fe}"
    );
}
